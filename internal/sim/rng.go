// Package sim provides the deterministic simulation substrate shared by the
// rest of the repository: a splittable pseudo-random number generator, a
// virtual clock measured in nanoseconds, and a handful of probability
// distributions used by the synthetic workloads.
//
// Everything in this package is deterministic given a seed, which is what
// makes the experiment harness reproducible: the same seed always produces
// the same trace, the same samples and therefore the same analysis output.
package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator based on
// SplitMix64. It is intentionally not backed by math/rand so that the stream
// is stable across Go releases, and so that independent generators can be
// split off cheaply for parallel ranks without sharing state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators built from the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent generator from the current one. The derived
// stream is decorrelated from the parent by mixing in a large odd constant.
// Split advances the parent state, so successive Split calls yield distinct
// children.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64()*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniformly distributed integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, generated with the Box-Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a log-normally distributed value whose underlying normal
// has the given mu and sigma.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exponential returns an exponentially distributed value with the given mean.
func (r *RNG) Exponential(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Jitter returns v perturbed by a relative uniform jitter in
// [-frac, +frac]. Jitter(v, 0.05) returns a value within ±5% of v.
func (r *RNG) Jitter(v, frac float64) float64 {
	return v * (1 + frac*(2*r.Float64()-1))
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
