package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(12345)
	b := NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at %d: %d vs %d", i, got, want)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced the same first value")
	}
	// Split must advance the parent deterministically.
	p1 := NewRNG(7)
	p1.Split()
	p1.Split()
	p2 := NewRNG(7)
	p2.Split()
	p2.Split()
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("parent state after splits is not deterministic")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(3)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 100000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	stddev := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("normal mean %v, want ~10", mean)
	}
	if math.Abs(stddev-3) > 0.1 {
		t.Errorf("normal stddev %v, want ~3", stddev)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exponential(5)
		if v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-5) > 0.1 {
		t.Errorf("exponential mean %v, want ~5", mean)
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 10000; i++ {
		v := r.Jitter(100, 0.1)
		if v < 90 || v > 110 {
			t.Fatalf("Jitter(100, 0.1) out of [90,110]: %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		size := int(n%50) + 1
		p := NewRNG(seed).Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := NewRNG(23)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d, want %d", got, sum)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(29)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(0, 0.5); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}
