package sim

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs, or 0 for an empty slice. xs is not
// modified.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// MeanAbsError returns the mean absolute difference between a and b, which
// must have equal length.
func MeanAbsError(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("sim: MeanAbsError length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s / float64(len(a))
}

// RMSE returns the root-mean-square error between a and b, which must have
// equal length.
func RMSE(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("sim: RMSE length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}

// Linspace returns n evenly spaced values from lo to hi inclusive. n must be
// at least 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("sim: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// Clamp limits v to the interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
