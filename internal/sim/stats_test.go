package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); got != c.want {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); math.Abs(got-4) > 1e-12 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := Stddev(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("Stddev = %v, want 2", got)
	}
	if Variance([]float64{3}) != 0 {
		t.Error("Variance of singleton should be 0")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("empty median = %v, want 0", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated input: %v", xs)
	}
}

func TestQuantileEndpoints(t *testing.T) {
	xs := []float64{10, 20, 30}
	if got := Quantile(xs, 0); got != 10 {
		t.Errorf("q0 = %v, want 10", got)
	}
	if got := Quantile(xs, 1); got != 30 {
		t.Errorf("q1 = %v, want 30", got)
	}
	if got := Quantile(xs, 0.5); got != 20 {
		t.Errorf("q0.5 = %v, want 20", got)
	}
}

func TestQuantileWithinRange(t *testing.T) {
	check := func(raw []float64, qRaw float64) bool {
		if len(raw) == 0 {
			return Quantile(raw, 0.5) == 0
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true // skip pathological inputs
			}
		}
		q := math.Abs(qRaw)
		q -= math.Floor(q) // into [0,1)
		v := Quantile(raw, q)
		s := append([]float64(nil), raw...)
		sort.Float64s(s)
		return v >= s[0] && v <= s[len(s)-1]
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanAbsErrorAndRMSE(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{2, 2, 5}
	if got := MeanAbsError(a, b); got != 1 {
		t.Errorf("MAE = %v, want 1", got)
	}
	want := math.Sqrt((1.0 + 0 + 4) / 3)
	if got := RMSE(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", got, want)
	}
}

func TestMeanAbsErrorPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	MeanAbsError([]float64{1}, []float64{1, 2})
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Linspace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got[len(got)-1] != 1 {
		t.Fatal("Linspace endpoint not exact")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp misbehaves")
	}
}
