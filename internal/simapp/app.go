package simapp

import (
	"fmt"

	"phasefold/internal/callstack"
	"phasefold/internal/counters"
	"phasefold/internal/sim"
)

// TruthPhase is one ground-truth phase of an instrumented region, expressed
// in the region's normalized time: the phase ends at fraction FracEnd of the
// region duration and accumulates counters at Rates while active.
type TruthPhase struct {
	Name    string
	Routine string
	Line    int
	FracEnd float64
	Rates   Rates
}

// MIPS returns the phase's true MIPS (instructions per microsecond).
func (p TruthPhase) MIPS() float64 {
	return p.Rates[counters.Instructions] / 1e6
}

// RegionTruth is the ground-truth internal structure of one instrumented
// region: the phase sequence every invocation executes.
type RegionTruth struct {
	Region int64
	Name   string
	Phases []TruthPhase
}

// Breakpoints returns the interior phase boundaries (fractions in (0,1)).
func (rt *RegionTruth) Breakpoints() []float64 {
	if len(rt.Phases) <= 1 {
		return nil
	}
	out := make([]float64, 0, len(rt.Phases)-1)
	for _, p := range rt.Phases[:len(rt.Phases)-1] {
		out = append(out, p.FracEnd)
	}
	return out
}

// RateAt returns the true counter rates at normalized time x in [0,1).
func (rt *RegionTruth) RateAt(x float64) Rates {
	for _, p := range rt.Phases {
		if x < p.FracEnd {
			return p.Rates
		}
	}
	return rt.Phases[len(rt.Phases)-1].Rates
}

// Truth collects the ground-truth structure of every instrumented region of
// an application, keyed by region id.
type Truth struct {
	Regions map[int64]*RegionTruth
}

// NewTruth returns an empty ground-truth registry.
func NewTruth() *Truth { return &Truth{Regions: make(map[int64]*RegionTruth)} }

// Add registers a region's truth, panicking on duplicate region ids.
func (t *Truth) Add(rt *RegionTruth) {
	if _, dup := t.Regions[rt.Region]; dup {
		panic(fmt.Sprintf("simapp: duplicate truth for region %d", rt.Region))
	}
	t.Regions[rt.Region] = rt
}

// RegionTruthFromKernels concatenates the phase structure of kernels
// executed back-to-back inside one region, re-normalizing phase boundaries
// to the combined duration.
func RegionTruthFromKernels(region int64, name string, freqGHz float64, kernels ...*Kernel) *RegionTruth {
	if len(kernels) == 0 {
		panic("simapp: region truth needs at least one kernel")
	}
	var total float64
	for _, k := range kernels {
		total += float64(k.NominalDur())
	}
	rt := &RegionTruth{Region: region, Name: name}
	var offset float64
	for _, k := range kernels {
		kdur := float64(k.NominalDur())
		for _, p := range k.TruthPhases(freqGHz) {
			rt.Phases = append(rt.Phases, TruthPhase{
				Name:    p.Name,
				Routine: p.Routine,
				Line:    p.Line,
				FracEnd: (offset + p.FracEnd*kdur) / total,
				Rates:   p.Rates,
			})
		}
		offset += kdur
	}
	rt.Phases[len(rt.Phases)-1].FracEnd = 1
	return rt
}

// Config parameterizes one simulated execution.
type Config struct {
	// Ranks is the number of SPMD processes.
	Ranks int
	// Iterations is the number of main-loop iterations.
	Iterations int
	// Seed drives all stochastic behaviour.
	Seed uint64
	// FreqGHz is the core frequency of every rank.
	FreqGHz float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Ranks <= 0:
		return fmt.Errorf("simapp: config needs at least one rank, got %d", c.Ranks)
	case c.Iterations <= 0:
		return fmt.Errorf("simapp: config needs at least one iteration, got %d", c.Iterations)
	case c.FreqGHz <= 0:
		return fmt.Errorf("simapp: config needs a positive frequency, got %v", c.FreqGHz)
	}
	return nil
}

// Env is what an application sees during Setup: the shared symbol table to
// define routines in, the ground-truth registry to fill, and the run
// configuration.
type Env struct {
	Symbols *callstack.SymbolTable
	Truth   *Truth
	Cfg     Config
}

// Instrumenter is the probe interface the runner drives; the instr package
// implements it by writing trace events. Probes may consume virtual time
// (instrumentation overhead), which the overhead experiment measures.
type Instrumenter interface {
	IterBegin(m *Machine, iter int64)
	IterEnd(m *Machine, iter int64)
	RegionEnter(m *Machine, region int64)
	RegionExit(m *Machine, region int64)
	CommEnter(m *Machine, peer int64)
	CommExit(m *Machine, peer int64)
}

// App is a simulated SPMD application.
type App interface {
	// Name identifies the application in traces and reports.
	Name() string
	// Setup defines kernels and ground truth. It runs once per execution,
	// before any rank starts.
	Setup(env *Env)
	// RunIteration executes one main-loop iteration on rank m, driving the
	// instrumenter at region and communication boundaries.
	RunIteration(m *Machine, it Instrumenter, iter int64)
}

// commRates models a rank inside a communication primitive: the MPI runtime
// spins/polls, committing few instructions with poor IPC and almost no
// memory or FP traffic.
func commRates(freqGHz float64) Rates {
	var r Rates
	cyc := freqGHz * 1e9
	ins := 0.25 * cyc
	r[counters.Instructions] = ins
	r[counters.Cycles] = cyc
	r[counters.Loads] = 0.30 * ins
	r[counters.Stores] = 0.05 * ins
	r[counters.Branches] = 0.25 * ins
	r[counters.BranchMisses] = 0.02 * 0.25 * ins
	r[counters.L1DMisses] = 2 * ins / 1000
	return r
}

// Comm executes one communication primitive of the given duration on m,
// bracketing it with CommEnter/CommExit probes.
func Comm(m *Machine, it Instrumenter, peer int64, dur sim.Duration) {
	it.CommEnter(m, peer)
	m.Exec(dur, commRates(m.FreqGHz))
	it.CommExit(m, peer)
}

// Runner executes an application under a configuration, wiring per-rank
// machines to the provided instrumenter and observers.
type Runner struct {
	// Attach, if non-nil, is called for every rank's machine before it
	// starts executing; samplers register themselves here.
	Attach func(m *Machine)
}

// Run executes the application. Ranks run sequentially, each on its own
// virtual clock starting at zero — virtual timelines are per-rank, exactly
// as per-process tracing buffers are. It returns the ground truth recorded
// during Setup.
func (r *Runner) Run(app App, cfg Config, syms *callstack.SymbolTable, it Instrumenter) (*Truth, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	env := &Env{Symbols: syms, Truth: NewTruth(), Cfg: cfg}
	app.Setup(env)
	root := sim.NewRNG(cfg.Seed)
	for rank := 0; rank < cfg.Ranks; rank++ {
		m := NewMachine(int32(rank), cfg.FreqGHz, root)
		if r.Attach != nil {
			r.Attach(m)
		}
		for iter := int64(0); iter < int64(cfg.Iterations); iter++ {
			it.IterBegin(m, iter)
			app.RunIteration(m, it, iter)
			it.IterEnd(m, iter)
		}
		if m.StackDepth() != 0 {
			return nil, fmt.Errorf("simapp: app %q rank %d left %d frames on the stack", app.Name(), rank, m.StackDepth())
		}
	}
	return env.Truth, nil
}
