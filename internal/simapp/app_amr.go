package simapp

import (
	"math"

	"phasefold/internal/sim"
)

// Region ids of the AMR code.
const (
	RegionAMRAdvance int64 = 1
	RegionAMRRefine  int64 = 2
)

// AMR models an adaptive-mesh code with deliberate load imbalance: the
// advance region's work grows with rank (spatial imbalance) and drifts over
// time (mesh adaptation), and a refinement region only executes every
// RefineEvery iterations. The burst population therefore contains clusters
// of very different sizes and densities — the scenario where plain
// single-eps DBSCAN degrades and the Aggregative Cluster Refinement from the
// structure-detection line of work is needed (experiment T3).
type AMR struct {
	// Imbalance is the relative extra work of the last rank vs. rank 0.
	Imbalance float64
	// Drift is the relative amplitude of the slow sinusoidal workload
	// drift across iterations.
	Drift float64
	// RefineEvery triggers the refinement region every k-th iteration.
	RefineEvery int64

	advance, refine *Kernel
}

// NewAMR returns the default imbalanced workload.
func NewAMR() *AMR {
	return &AMR{Imbalance: 0.6, Drift: 0.25, RefineEvery: 8}
}

// Name implements App.
func (a *AMR) Name() string { return "amr" }

// Setup implements App.
func (a *AMR) Setup(env *Env) {
	a.advance = &Kernel{
		Name: "amr.advance", File: "amr/advance.c", StartLine: 90, EndLine: 190,
		Phases: []PhaseSpec{
			{
				Name: "gather_patches", Line: 104, Dur: 350 * sim.Microsecond,
				IPC: 0.65, L1PerKI: 70, L2PerKI: 32, L3PerKI: 13,
				LoadFrac: 0.46, StoreFrac: 0.12, BranchFrac: 0.10, FPFrac: 0.08,
				BranchMissPct: 2, JitterFrac: 0.03,
			},
			{
				Name: "patch_update", Line: 150, Dur: 900 * sim.Microsecond,
				IPC: 1.9, L1PerKI: 10, L2PerKI: 2, L3PerKI: 0.3,
				LoadFrac: 0.30, StoreFrac: 0.12, BranchFrac: 0.06, FPFrac: 0.45,
				BranchMissPct: 0.5, JitterFrac: 0.03,
			},
		},
	}
	a.refine = &Kernel{
		Name: "amr.refine", File: "amr/refine.c", StartLine: 30, EndLine: 120,
		Phases: []PhaseSpec{
			{
				Name: "flag_cells", Line: 44, Dur: 280 * sim.Microsecond,
				IPC: 0.9, L1PerKI: 40, L2PerKI: 15, L3PerKI: 6,
				LoadFrac: 0.40, StoreFrac: 0.08, BranchFrac: 0.20, FPFrac: 0.06,
				BranchMissPct: 6, JitterFrac: 0.05,
			},
			{
				Name: "regrid", Line: 88, Dur: 520 * sim.Microsecond,
				IPC: 1.1, L1PerKI: 35, L2PerKI: 18, L3PerKI: 8,
				LoadFrac: 0.35, StoreFrac: 0.25, BranchFrac: 0.12, FPFrac: 0.05,
				BranchMissPct: 3, JitterFrac: 0.05,
			},
		},
	}
	a.advance.Define(env.Symbols)
	a.refine.Define(env.Symbols)
	env.Truth.Add(RegionTruthFromKernels(RegionAMRAdvance, "advance", env.Cfg.FreqGHz, a.advance))
	env.Truth.Add(RegionTruthFromKernels(RegionAMRRefine, "refine", env.Cfg.FreqGHz, a.refine))
}

// rankScale returns the work multiplier of rank r among n ranks.
func (a *AMR) rankScale(r int32, n int) float64 {
	if n <= 1 {
		return 1
	}
	return 1 + a.Imbalance*float64(r)/float64(n-1)
}

// RunIteration implements App.
func (a *AMR) RunIteration(m *Machine, it Instrumenter, iter int64) {
	// nRanks is not threaded through the App interface; recover the scale
	// from the rank alone with a fixed reference width so the imbalance is
	// stable regardless of the configured rank count.
	scale := a.rankScale(m.Rank, 16)
	scale *= 1 + a.Drift*math.Sin(2*math.Pi*float64(iter)/64)
	scale *= m.RNG.Jitter(1, 0.05)

	it.RegionEnter(m, RegionAMRAdvance)
	a.advance.Exec(m, scale)
	it.RegionExit(m, RegionAMRAdvance)

	if a.RefineEvery > 0 && iter%a.RefineEvery == a.RefineEvery-1 {
		it.RegionEnter(m, RegionAMRRefine)
		a.refine.Exec(m, m.RNG.Jitter(1, 0.10))
		it.RegionExit(m, RegionAMRRefine)
	}

	// Neighbour exchange; the fastest ranks wait for the slowest, so comm
	// time shrinks with rank scale (complementary wait).
	wait := (1 + a.Imbalance - scale/m.RNG.Jitter(1, 0.01)) * float64(400*sim.Microsecond)
	if wait < float64(40*sim.Microsecond) {
		wait = float64(40 * sim.Microsecond)
	}
	Comm(m, it, -1, sim.Duration(wait))
}
