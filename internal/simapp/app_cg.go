package simapp

import "phasefold/internal/sim"

// Region ids of the CG solver.
const (
	RegionCGSpMV int64 = 1
	RegionCGDot  int64 = 2
	RegionCGAxpy int64 = 3
)

// CGSolver models a conjugate-gradient iteration, the archetypal sparse
// solver the folding case studies analyzed: a sparse matrix-vector product
// (irregular, memory bound, with an indirection-heavy gather followed by the
// multiply-accumulate sweep), dot products (reductions ending in a global
// collective) and vector updates (pure streaming). Each solver step is a
// separate instrumented region, so structure detection should discover three
// clusters, and folding should expose the gather/FMA split inside SpMV.
type CGSolver struct {
	// RowsScale stretches the SpMV duration (problem size knob).
	RowsScale float64
	// Optimized, when true, models the paper's guided transformation on
	// the gather phase (software prefetch / reordered accesses): the
	// gather's IPC improves and its cache misses shrink, shortening the
	// phase. The case-study experiment measures the resulting speedup.
	Optimized bool

	spmv, dot, axpy *Kernel
}

// NewCGSolver returns the baseline (unoptimized) solver.
func NewCGSolver() *CGSolver { return &CGSolver{RowsScale: 1} }

// Name implements App.
func (a *CGSolver) Name() string {
	if a.Optimized {
		return "cg-opt"
	}
	return "cg"
}

// Setup implements App.
func (a *CGSolver) Setup(env *Env) {
	gather := PhaseSpec{
		Name: "spmv_gather", Line: 122, Dur: 700 * sim.Microsecond,
		IPC: 0.55, L1PerKI: 75, L2PerKI: 38, L3PerKI: 15,
		LoadFrac: 0.50, StoreFrac: 0.04, BranchFrac: 0.12, FPFrac: 0.05,
		BranchMissPct: 2.5, JitterFrac: 0.03,
	}
	if a.Optimized {
		// The guided transformation: prefetching the column indices makes
		// the gather mostly L1-resident; the phase runs ~1.8x faster.
		gather.Dur = 390 * sim.Microsecond
		gather.IPC = 1.0
		gather.L1PerKI, gather.L2PerKI, gather.L3PerKI = 30, 9, 3
	}
	a.spmv = &Kernel{
		Name: "cg.spmv", File: "cg/spmv.c", StartLine: 110, EndLine: 180,
		Phases: []PhaseSpec{
			gather,
			{
				Name: "spmv_fma", Line: 154, Dur: 500 * sim.Microsecond,
				IPC: 1.8, L1PerKI: 22, L2PerKI: 6, L3PerKI: 1,
				LoadFrac: 0.35, StoreFrac: 0.12, BranchFrac: 0.06, FPFrac: 0.45,
				BranchMissPct: 0.6, JitterFrac: 0.03,
			},
		},
	}
	a.dot = &Kernel{
		Name: "cg.dot", File: "cg/blas1.c", StartLine: 20, EndLine: 45,
		Phases: []PhaseSpec{
			{
				Name: "dot_reduce", Line: 31, Dur: 180 * sim.Microsecond,
				IPC: 1.6, L1PerKI: 30, L2PerKI: 8, L3PerKI: 2,
				LoadFrac: 0.45, StoreFrac: 0.02, BranchFrac: 0.07, FPFrac: 0.40,
				BranchMissPct: 0.4, JitterFrac: 0.03,
			},
		},
	}
	a.axpy = &Kernel{
		Name: "cg.axpy", File: "cg/blas1.c", StartLine: 50, EndLine: 76,
		Phases: []PhaseSpec{
			{
				Name: "axpy_stream", Line: 61, Dur: 260 * sim.Microsecond,
				IPC: 1.1, L1PerKI: 55, L2PerKI: 16, L3PerKI: 5,
				LoadFrac: 0.40, StoreFrac: 0.22, BranchFrac: 0.06, FPFrac: 0.30,
				BranchMissPct: 0.3, JitterFrac: 0.03,
			},
		},
	}
	for _, k := range []*Kernel{a.spmv, a.dot, a.axpy} {
		k.Define(env.Symbols)
	}
	env.Truth.Add(RegionTruthFromKernels(RegionCGSpMV, "spmv", env.Cfg.FreqGHz, a.spmv))
	env.Truth.Add(RegionTruthFromKernels(RegionCGDot, "dot", env.Cfg.FreqGHz, a.dot))
	env.Truth.Add(RegionTruthFromKernels(RegionCGAxpy, "axpy", env.Cfg.FreqGHz, a.axpy))
}

// RunIteration implements App. One CG step: halo exchange, SpMV, dot +
// allreduce, two vector updates, dot + allreduce.
func (a *CGSolver) RunIteration(m *Machine, it Instrumenter, iter int64) {
	scale := m.RNG.Jitter(1, 0.05)
	right := int64((int(m.Rank) + 1))
	// Halo exchange with the neighbour rank.
	Comm(m, it, right, sim.Duration(m.RNG.Jitter(float64(90*sim.Microsecond), 0.25)))

	it.RegionEnter(m, RegionCGSpMV)
	a.spmv.Exec(m, scale*a.RowsScale)
	it.RegionExit(m, RegionCGSpMV)

	it.RegionEnter(m, RegionCGDot)
	a.dot.Exec(m, scale)
	it.RegionExit(m, RegionCGDot)
	Comm(m, it, -1, sim.Duration(m.RNG.Jitter(float64(50*sim.Microsecond), 0.3))) // allreduce

	it.RegionEnter(m, RegionCGAxpy)
	a.axpy.Exec(m, scale)
	a.axpy.Exec(m, scale)
	it.RegionExit(m, RegionCGAxpy)

	it.RegionEnter(m, RegionCGDot)
	a.dot.Exec(m, scale)
	it.RegionExit(m, RegionCGDot)
	Comm(m, it, -1, sim.Duration(m.RNG.Jitter(float64(50*sim.Microsecond), 0.3)))
}
