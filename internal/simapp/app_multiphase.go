package simapp

import "phasefold/internal/sim"

// Region ids used by the bundled applications. Ids are unique per app; the
// analysis never mixes regions across apps.
const (
	RegionMultiphaseStep int64 = 1
)

// Multiphase is the controlled synthetic workload behind experiments F1-F3,
// T1 and F6: a single instrumented region whose body walks through four
// internal phases with strongly contrasting microarchitectural behaviour
// (streaming, dense FP, pointer chasing, reduction). The phase granularity
// (hundreds of microseconds) sits far below the default sampling period, so
// only folding across iterations can expose the internal structure.
type Multiphase struct {
	// ScaleJitter perturbs whole-iteration duration (fraction, uniform);
	// it models iteration-to-iteration variability without moving the
	// relative phase boundaries.
	ScaleJitter float64
	// PhaseJitter perturbs individual phase durations, which does move
	// boundaries slightly and adds realistic noise to the folded cloud.
	PhaseJitter float64
	// CommDur is the duration of the closing collective.
	CommDur sim.Duration

	step *Kernel
}

// NewMultiphase returns the workload with the default noise levels used by
// the experiments.
func NewMultiphase() *Multiphase {
	return &Multiphase{ScaleJitter: 0.08, PhaseJitter: 0.02, CommDur: 60 * sim.Microsecond}
}

// Name implements App.
func (a *Multiphase) Name() string { return "multiphase" }

// Setup implements App.
func (a *Multiphase) Setup(env *Env) {
	a.step = &Kernel{
		Name:      "multiphase.step",
		File:      "multiphase/step.c",
		StartLine: 10,
		EndLine:   95,
		Phases: []PhaseSpec{
			{
				Name: "init_stream", Line: 18, Dur: 400 * sim.Microsecond,
				IPC: 0.8, L1PerKI: 60, L2PerKI: 18, L3PerKI: 6,
				LoadFrac: 0.35, StoreFrac: 0.30, BranchFrac: 0.08, FPFrac: 0.05,
				BranchMissPct: 0.5, JitterFrac: a.PhaseJitter,
			},
			{
				Name: "dense_compute", Line: 41, Dur: 900 * sim.Microsecond,
				IPC: 2.4, L1PerKI: 4, L2PerKI: 0.8, L3PerKI: 0.1,
				LoadFrac: 0.25, StoreFrac: 0.10, BranchFrac: 0.05, FPFrac: 0.55,
				BranchMissPct: 0.2, JitterFrac: a.PhaseJitter,
			},
			{
				Name: "pointer_chase", Line: 63, Dur: 600 * sim.Microsecond,
				IPC: 0.45, L1PerKI: 90, L2PerKI: 45, L3PerKI: 22,
				LoadFrac: 0.45, StoreFrac: 0.05, BranchFrac: 0.20, FPFrac: 0.02,
				BranchMissPct: 6, JitterFrac: a.PhaseJitter,
			},
			{
				Name: "reduce", Line: 84, Dur: 300 * sim.Microsecond,
				IPC: 1.5, L1PerKI: 12, L2PerKI: 3, L3PerKI: 0.5,
				LoadFrac: 0.30, StoreFrac: 0.08, BranchFrac: 0.10, FPFrac: 0.30,
				BranchMissPct: 1, JitterFrac: a.PhaseJitter,
			},
		},
	}
	a.step.Define(env.Symbols)
	env.Truth.Add(RegionTruthFromKernels(RegionMultiphaseStep, "step", env.Cfg.FreqGHz, a.step))
}

// RunIteration implements App.
func (a *Multiphase) RunIteration(m *Machine, it Instrumenter, iter int64) {
	scale := 1.0
	if a.ScaleJitter > 0 {
		scale = m.RNG.Jitter(1, a.ScaleJitter)
	}
	it.RegionEnter(m, RegionMultiphaseStep)
	a.step.Exec(m, scale)
	it.RegionExit(m, RegionMultiphaseStep)
	Comm(m, it, -1, sim.Duration(m.RNG.Jitter(float64(a.CommDur), 0.2)))
}
