package simapp

import "phasefold/internal/sim"

// Region ids of the n-body code.
const (
	RegionNBodyForces    int64 = 1
	RegionNBodyIntegrate int64 = 2
)

// NBody models a particle code: a long force-computation region whose body
// first walks a neighbour structure (branchy, cache-unfriendly) and then
// evaluates pairwise interactions (dense FP, the longest phase of the whole
// application), followed by a short streaming integration region and an
// allgather of updated positions. The force region's internal 25/75 split is
// invisible to per-region profiles — it takes folding to see that only the
// neighbour walk is worth optimizing.
type NBody struct {
	// Optimized models sorting particles by cell, which makes the
	// neighbour walk predictable and cache friendly.
	Optimized bool

	forces, integrate *Kernel
}

// NewNBody returns the baseline n-body workload.
func NewNBody() *NBody { return &NBody{} }

// Name implements App.
func (a *NBody) Name() string {
	if a.Optimized {
		return "nbody-opt"
	}
	return "nbody"
}

// Setup implements App.
func (a *NBody) Setup(env *Env) {
	walk := PhaseSpec{
		Name: "neighbor_walk", Line: 77, Dur: 620 * sim.Microsecond,
		IPC: 0.5, L1PerKI: 85, L2PerKI: 40, L3PerKI: 18,
		LoadFrac: 0.42, StoreFrac: 0.06, BranchFrac: 0.22, FPFrac: 0.04,
		BranchMissPct: 8, JitterFrac: 0.03,
	}
	if a.Optimized {
		walk.Dur = 330 * sim.Microsecond
		walk.IPC = 0.95
		walk.L1PerKI, walk.L2PerKI, walk.L3PerKI = 35, 12, 4
		walk.BranchMissPct = 2.5
	}
	a.forces = &Kernel{
		Name: "nbody.forces", File: "nbody/forces.c", StartLine: 60, EndLine: 170,
		Phases: []PhaseSpec{
			walk,
			{
				Name: "pairwise_fma", Line: 131, Dur: 1900 * sim.Microsecond,
				IPC: 2.6, L1PerKI: 3, L2PerKI: 0.4, L3PerKI: 0.05,
				LoadFrac: 0.22, StoreFrac: 0.08, BranchFrac: 0.04, FPFrac: 0.60,
				BranchMissPct: 0.1, JitterFrac: 0.03,
			},
		},
	}
	a.integrate = &Kernel{
		Name: "nbody.integrate", File: "nbody/integrate.c", StartLine: 20, EndLine: 64,
		Phases: []PhaseSpec{
			{
				Name: "leapfrog", Line: 38, Dur: 240 * sim.Microsecond,
				IPC: 1.2, L1PerKI: 48, L2PerKI: 14, L3PerKI: 4,
				LoadFrac: 0.38, StoreFrac: 0.24, BranchFrac: 0.05, FPFrac: 0.28,
				BranchMissPct: 0.3, JitterFrac: 0.03,
			},
		},
	}
	a.forces.Define(env.Symbols)
	a.integrate.Define(env.Symbols)
	env.Truth.Add(RegionTruthFromKernels(RegionNBodyForces, "forces", env.Cfg.FreqGHz, a.forces))
	env.Truth.Add(RegionTruthFromKernels(RegionNBodyIntegrate, "integrate", env.Cfg.FreqGHz, a.integrate))
}

// RunIteration implements App.
func (a *NBody) RunIteration(m *Machine, it Instrumenter, iter int64) {
	scale := m.RNG.Jitter(1, 0.05)

	it.RegionEnter(m, RegionNBodyForces)
	a.forces.Exec(m, scale)
	it.RegionExit(m, RegionNBodyForces)

	it.RegionEnter(m, RegionNBodyIntegrate)
	a.integrate.Exec(m, scale)
	it.RegionExit(m, RegionNBodyIntegrate)

	// Allgather of updated positions.
	Comm(m, it, -1, sim.Duration(m.RNG.Jitter(float64(110*sim.Microsecond), 0.3)))
}
