package simapp

import "phasefold/internal/sim"

// Region ids of the stencil code.
const (
	RegionStencilUpdate int64 = 1
	RegionStencilBC     int64 = 2
)

// Stencil models a structured-grid hydrodynamics sweep (HydroC-like): per
// iteration, a halo exchange with both neighbours, then one instrumented
// update region whose body walks three internal phases — a bandwidth-bound
// halo/load sweep, a flux computation with dense FP, and an equation-of-state
// evaluation that is compute bound but branchy — followed by a short
// boundary-condition fix-up region. The interesting analysis question the
// paper poses on codes like this is which fraction of the update is actually
// memory bound, which is exactly what folding + PWL answers.
type Stencil struct {
	// Optimized models the guided transformation of the case study:
	// blocking the load sweep for the L2 cache, which raises its IPC and
	// drops its miss rates.
	Optimized bool

	update, bc *Kernel
}

// NewStencil returns the baseline stencil workload.
func NewStencil() *Stencil { return &Stencil{} }

// Name implements App.
func (a *Stencil) Name() string {
	if a.Optimized {
		return "stencil-opt"
	}
	return "stencil"
}

// Setup implements App.
func (a *Stencil) Setup(env *Env) {
	loads := PhaseSpec{
		Name: "load_sweep", Line: 210, Dur: 820 * sim.Microsecond,
		IPC: 0.7, L1PerKI: 68, L2PerKI: 30, L3PerKI: 14,
		LoadFrac: 0.48, StoreFrac: 0.18, BranchFrac: 0.06, FPFrac: 0.10,
		BranchMissPct: 0.5, JitterFrac: 0.025,
	}
	if a.Optimized {
		loads.Dur = 560 * sim.Microsecond
		loads.IPC = 1.05
		loads.L1PerKI, loads.L2PerKI, loads.L3PerKI = 40, 10, 3
	}
	a.update = &Kernel{
		Name: "hydro.update", File: "hydro/sweep.c", StartLine: 200, EndLine: 305,
		Phases: []PhaseSpec{
			loads,
			{
				Name: "flux_compute", Line: 248, Dur: 640 * sim.Microsecond,
				IPC: 2.1, L1PerKI: 8, L2PerKI: 1.5, L3PerKI: 0.2,
				LoadFrac: 0.28, StoreFrac: 0.12, BranchFrac: 0.05, FPFrac: 0.50,
				BranchMissPct: 0.3, JitterFrac: 0.025,
			},
			{
				Name: "eos_eval", Line: 281, Dur: 380 * sim.Microsecond,
				IPC: 1.3, L1PerKI: 15, L2PerKI: 4, L3PerKI: 0.8,
				LoadFrac: 0.30, StoreFrac: 0.10, BranchFrac: 0.18, FPFrac: 0.30,
				BranchMissPct: 4, JitterFrac: 0.025,
			},
		},
	}
	a.bc = &Kernel{
		Name: "hydro.boundary", File: "hydro/bc.c", StartLine: 40, EndLine: 88,
		Phases: []PhaseSpec{
			{
				Name: "bc_fix", Line: 55, Dur: 120 * sim.Microsecond,
				IPC: 1.0, L1PerKI: 25, L2PerKI: 6, L3PerKI: 1.2,
				LoadFrac: 0.35, StoreFrac: 0.20, BranchFrac: 0.15, FPFrac: 0.10,
				BranchMissPct: 2, JitterFrac: 0.04,
			},
		},
	}
	a.update.Define(env.Symbols)
	a.bc.Define(env.Symbols)
	env.Truth.Add(RegionTruthFromKernels(RegionStencilUpdate, "update", env.Cfg.FreqGHz, a.update))
	env.Truth.Add(RegionTruthFromKernels(RegionStencilBC, "boundary", env.Cfg.FreqGHz, a.bc))
}

// RunIteration implements App.
func (a *Stencil) RunIteration(m *Machine, it Instrumenter, iter int64) {
	scale := m.RNG.Jitter(1, 0.04)
	left := int64(int(m.Rank) - 1)
	right := int64(int(m.Rank) + 1)
	Comm(m, it, left, sim.Duration(m.RNG.Jitter(float64(70*sim.Microsecond), 0.25)))
	Comm(m, it, right, sim.Duration(m.RNG.Jitter(float64(70*sim.Microsecond), 0.25)))

	it.RegionEnter(m, RegionStencilUpdate)
	a.update.Exec(m, scale)
	it.RegionExit(m, RegionStencilUpdate)

	it.RegionEnter(m, RegionStencilBC)
	a.bc.Exec(m, scale)
	it.RegionExit(m, RegionStencilBC)
}
