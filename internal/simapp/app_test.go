package simapp

import (
	"math"
	"testing"

	"phasefold/internal/callstack"
	"phasefold/internal/counters"
	"phasefold/internal/sim"
)

// countingInstr counts probe invocations without writing a trace.
type countingInstr struct {
	iters, regions, comms int
	lastIter              int64
}

func (c *countingInstr) IterBegin(m *Machine, iter int64) { c.iters++; c.lastIter = iter }
func (c *countingInstr) IterEnd(m *Machine, iter int64)   {}
func (c *countingInstr) RegionEnter(m *Machine, r int64)  { c.regions++ }
func (c *countingInstr) RegionExit(m *Machine, r int64)   {}
func (c *countingInstr) CommEnter(m *Machine, p int64)    { c.comms++ }
func (c *countingInstr) CommExit(m *Machine, p int64)     {}

func TestRunnerDrivesAllApps(t *testing.T) {
	for _, name := range AppNames() {
		app, err := NewApp(name)
		if err != nil {
			t.Fatal(err)
		}
		syms := callstack.NewSymbolTable()
		ci := &countingInstr{}
		cfg := Config{Ranks: 2, Iterations: 10, Seed: 7, FreqGHz: 2}
		truth, err := (&Runner{}).Run(app, cfg, syms, ci)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ci.iters != cfg.Ranks*cfg.Iterations {
			t.Errorf("%s: %d IterBegin probes, want %d", name, ci.iters, cfg.Ranks*cfg.Iterations)
		}
		if ci.regions == 0 {
			t.Errorf("%s: no region probes", name)
		}
		if len(truth.Regions) == 0 {
			t.Errorf("%s: no ground truth recorded", name)
		}
		if syms.Len() == 0 {
			t.Errorf("%s: no routines defined", name)
		}
	}
}

func TestRunnerRejectsBadConfig(t *testing.T) {
	app, _ := NewApp("multiphase")
	bad := []Config{
		{Ranks: 0, Iterations: 1, FreqGHz: 2},
		{Ranks: 1, Iterations: 0, FreqGHz: 2},
		{Ranks: 1, Iterations: 1, FreqGHz: 0},
	}
	for i, cfg := range bad {
		if _, err := (&Runner{}).Run(app, cfg, callstack.NewSymbolTable(), &countingInstr{}); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRunnerDeterminism(t *testing.T) {
	run := func() sim.Time {
		app, _ := NewApp("cg")
		var last sim.Time
		track := &trackingInstr{}
		cfg := Config{Ranks: 2, Iterations: 20, Seed: 99, FreqGHz: 2}
		if _, err := (&Runner{}).Run(app, cfg, callstack.NewSymbolTable(), track); err != nil {
			t.Fatal(err)
		}
		last = track.lastTime
		return last
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different end times: %v vs %v", a, b)
	}
}

type trackingInstr struct {
	countingInstr
	lastTime sim.Time
}

func (tr *trackingInstr) IterEnd(m *Machine, iter int64) { tr.lastTime = m.Clock.Now() }

func TestRunnerAttachHook(t *testing.T) {
	app, _ := NewApp("multiphase")
	attached := 0
	r := &Runner{Attach: func(m *Machine) { attached++ }}
	cfg := Config{Ranks: 3, Iterations: 2, Seed: 1, FreqGHz: 2}
	if _, err := r.Run(app, cfg, callstack.NewSymbolTable(), &countingInstr{}); err != nil {
		t.Fatal(err)
	}
	if attached != 3 {
		t.Fatalf("Attach called %d times, want 3", attached)
	}
}

func TestRegionTruthFromKernels(t *testing.T) {
	syms := callstack.NewSymbolTable()
	k1 := &Kernel{Name: "a", File: "a.c", StartLine: 1, EndLine: 5,
		Phases: []PhaseSpec{{Name: "p1", Line: 2, Dur: 100 * sim.Microsecond, IPC: 1}}}
	k2 := &Kernel{Name: "b", File: "b.c", StartLine: 1, EndLine: 5,
		Phases: []PhaseSpec{
			{Name: "p2", Line: 2, Dur: 100 * sim.Microsecond, IPC: 2},
			{Name: "p3", Line: 4, Dur: 200 * sim.Microsecond, IPC: 3},
		}}
	k1.Define(syms)
	k2.Define(syms)
	rt := RegionTruthFromKernels(5, "combo", 2.0, k1, k2)
	if rt.Region != 5 || len(rt.Phases) != 3 {
		t.Fatalf("region truth = %+v", rt)
	}
	wantEnds := []float64{0.25, 0.5, 1.0}
	for i, w := range wantEnds {
		if math.Abs(rt.Phases[i].FracEnd-w) > 1e-12 {
			t.Errorf("phase %d ends at %v, want %v", i, rt.Phases[i].FracEnd, w)
		}
	}
	bps := rt.Breakpoints()
	if len(bps) != 2 || bps[0] != 0.25 || bps[1] != 0.5 {
		t.Fatalf("breakpoints = %v", bps)
	}
	// RateAt must select the right phase.
	if got := rt.RateAt(0.1)[counters.Instructions]; math.Abs(got-2e9) > 1 {
		t.Errorf("RateAt(0.1) = %v, want 2e9", got)
	}
	if got := rt.RateAt(0.7)[counters.Instructions]; math.Abs(got-6e9) > 1 {
		t.Errorf("RateAt(0.7) = %v, want 6e9", got)
	}
	if got := rt.RateAt(1.5)[counters.Instructions]; math.Abs(got-6e9) > 1 {
		t.Errorf("RateAt past end = %v, want last phase", got)
	}
}

func TestTruthDuplicatePanics(t *testing.T) {
	tr := NewTruth()
	rt := &RegionTruth{Region: 1, Phases: []TruthPhase{{FracEnd: 1}}}
	tr.Add(rt)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate truth did not panic")
		}
	}()
	tr.Add(rt)
}

func TestNewAppUnknown(t *testing.T) {
	if _, err := NewApp("definitely-not-an-app"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestOptimizedVariantsAreFaster(t *testing.T) {
	endTime := func(name string) sim.Time {
		app, err := NewApp(name)
		if err != nil {
			t.Fatal(err)
		}
		track := &trackingInstr{}
		cfg := Config{Ranks: 1, Iterations: 30, Seed: 5, FreqGHz: 2}
		if _, err := (&Runner{}).Run(app, cfg, callstack.NewSymbolTable(), track); err != nil {
			t.Fatal(err)
		}
		return track.lastTime
	}
	for _, pair := range [][2]string{{"cg", "cg-opt"}, {"stencil", "stencil-opt"}, {"nbody", "nbody-opt"}} {
		base, opt := endTime(pair[0]), endTime(pair[1])
		if opt >= base {
			t.Errorf("%s (%v) not faster than %s (%v)", pair[1], opt, pair[0], base)
		}
		speedup := float64(base) / float64(opt)
		if speedup < 1.05 || speedup > 2.0 {
			t.Errorf("%s speedup %.2fx outside the paper's plausible 1.05-2.0x band", pair[1], speedup)
		}
	}
}

func TestCommWrapsProbes(t *testing.T) {
	m := NewMachine(0, 2, sim.NewRNG(1))
	ci := &countingInstr{}
	Comm(m, ci, -1, 10*sim.Microsecond)
	if ci.comms != 1 {
		t.Fatalf("CommEnter fired %d times", ci.comms)
	}
	if m.Clock.Now() != 10*sim.Microsecond {
		t.Fatalf("comm advanced clock to %v", m.Clock.Now())
	}
	// Comm must accumulate some (spin) instructions but far fewer than
	// compute would.
	ins := m.Counters()[counters.Instructions]
	if ins <= 0 || ins > 10_000*2 {
		t.Fatalf("comm instructions = %d", ins)
	}
}

func TestTruthFractionsAreMonotone(t *testing.T) {
	for _, name := range AppNames() {
		app, _ := NewApp(name)
		cfg := Config{Ranks: 1, Iterations: 1, Seed: 1, FreqGHz: 2}
		truth, err := (&Runner{}).Run(app, cfg, callstack.NewSymbolTable(), &countingInstr{})
		if err != nil {
			t.Fatal(err)
		}
		for region, rt := range truth.Regions {
			prev := 0.0
			for i, p := range rt.Phases {
				if p.FracEnd <= prev {
					t.Errorf("%s region %d phase %d: FracEnd %v not increasing", name, region, i, p.FracEnd)
				}
				prev = p.FracEnd
			}
			if math.Abs(prev-1) > 1e-12 {
				t.Errorf("%s region %d: last FracEnd %v != 1", name, region, prev)
			}
		}
	}
}
