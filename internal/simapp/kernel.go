package simapp

import (
	"fmt"

	"phasefold/internal/callstack"
	"phasefold/internal/counters"
	"phasefold/internal/sim"
)

// PhaseSpec describes one internal phase of a kernel: a stretch of code with
// homogeneous microarchitectural behaviour. Rates are specified the way an
// analyst thinks about them (IPC, misses per kilo-instruction, instruction
// mix fractions) and converted to absolute counter rates given the core
// frequency.
type PhaseSpec struct {
	// Name labels the phase in ground truth and reports.
	Name string
	// Line is the source line attributed to the phase (the leaf frame's
	// line while the phase executes).
	Line int
	// Dur is the nominal virtual duration of the phase per kernel
	// invocation, before jitter.
	Dur sim.Duration
	// IPC is the phase's instructions-per-cycle.
	IPC float64
	// L1PerKI, L2PerKI, L3PerKI are cache misses per 1000 instructions.
	L1PerKI, L2PerKI, L3PerKI float64
	// LoadFrac, StoreFrac, BranchFrac, FPFrac are fractions of the
	// instruction stream that are loads, stores, branches and FP ops.
	LoadFrac, StoreFrac, BranchFrac, FPFrac float64
	// BranchMissPct is the branch misprediction percentage.
	BranchMissPct float64
	// JitterFrac perturbs the phase duration per invocation (relative,
	// uniform). Zero means a perfectly regular phase.
	JitterFrac float64
}

// rates converts the specification into absolute counter rates (counts per
// second) at the given core frequency. The Energy rate follows the default
// power model — the same one machines are built with — so ground truth and
// execution agree.
func (p *PhaseSpec) rates(freqGHz float64) Rates {
	var r Rates
	cyc := freqGHz * 1e9
	ins := p.IPC * cyc
	r[counters.Instructions] = ins
	r[counters.Cycles] = cyc
	r[counters.L1DMisses] = p.L1PerKI * ins / 1000
	r[counters.L2Misses] = p.L2PerKI * ins / 1000
	r[counters.L3Misses] = p.L3PerKI * ins / 1000
	r[counters.Loads] = p.LoadFrac * ins
	r[counters.Stores] = p.StoreFrac * ins
	r[counters.Branches] = p.BranchFrac * ins
	r[counters.BranchMisses] = p.BranchMissPct / 100 * p.BranchFrac * ins
	r[counters.FPOps] = p.FPFrac * ins
	r[counters.Energy] = DefaultPowerModel().EnergyRate(r)
	return r
}

// MIPS returns the phase's ground-truth MIPS (instructions per microsecond)
// at the given frequency.
func (p *PhaseSpec) MIPS(freqGHz float64) float64 {
	return p.IPC * freqGHz * 1000
}

// Validate checks the specification for modelling errors.
func (p *PhaseSpec) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("simapp: phase with empty name")
	case p.Dur <= 0:
		return fmt.Errorf("simapp: phase %q has non-positive duration", p.Name)
	case p.IPC <= 0:
		return fmt.Errorf("simapp: phase %q has non-positive IPC", p.Name)
	case p.JitterFrac < 0 || p.JitterFrac >= 0.5:
		return fmt.Errorf("simapp: phase %q jitter %v outside [0,0.5)", p.Name, p.JitterFrac)
	case p.LoadFrac < 0 || p.StoreFrac < 0 || p.BranchFrac < 0 || p.FPFrac < 0:
		return fmt.Errorf("simapp: phase %q has negative mix fraction", p.Name)
	case p.BranchMissPct < 0 || p.BranchMissPct > 100:
		return fmt.Errorf("simapp: phase %q branch miss %v%% outside [0,100]", p.Name, p.BranchMissPct)
	}
	return nil
}

// Kernel is a simulated routine: a named source construct executing a fixed
// sequence of phases. A kernel invocation is what ends up inside one
// computation burst (possibly together with sibling kernels under the same
// instrumented region).
type Kernel struct {
	// Name, File, StartLine, EndLine give the routine's source coordinates.
	Name      string
	File      string
	StartLine int
	EndLine   int
	// Phases execute in order on every invocation.
	Phases []PhaseSpec

	routine callstack.RoutineID
	defined bool
}

// Define registers the kernel's routine in the symbol table. It must be
// called once before Exec; Validate failures panic because they are
// workload-model bugs, not runtime conditions.
func (k *Kernel) Define(syms *callstack.SymbolTable) {
	if len(k.Phases) == 0 {
		panic(fmt.Sprintf("simapp: kernel %q has no phases", k.Name))
	}
	for i := range k.Phases {
		if err := k.Phases[i].Validate(); err != nil {
			panic(err)
		}
	}
	k.routine = syms.Define(callstack.Routine{
		Name:      k.Name,
		File:      k.File,
		StartLine: k.StartLine,
		EndLine:   k.EndLine,
	})
	k.defined = true
}

// Routine returns the kernel's routine id; Define must have run.
func (k *Kernel) Routine() callstack.RoutineID {
	if !k.defined {
		panic(fmt.Sprintf("simapp: kernel %q used before Define", k.Name))
	}
	return k.routine
}

// NominalDur returns the jitter-free duration of one invocation.
func (k *Kernel) NominalDur() sim.Duration {
	var d sim.Duration
	for i := range k.Phases {
		d += k.Phases[i].Dur
	}
	return d
}

// Exec runs one kernel invocation on m. scale stretches every phase (work
// scaling, e.g. per-rank imbalance); per-phase jitter is drawn from the
// machine's generator on top of that.
func (k *Kernel) Exec(m *Machine, scale float64) {
	if !k.defined {
		panic(fmt.Sprintf("simapp: kernel %q executed before Define", k.Name))
	}
	if scale <= 0 {
		panic(fmt.Sprintf("simapp: kernel %q executed with non-positive scale %v", k.Name, scale))
	}
	m.PushFrame(callstack.Frame{Routine: k.routine, Line: k.StartLine})
	for i := range k.Phases {
		p := &k.Phases[i]
		d := float64(p.Dur) * scale
		if p.JitterFrac > 0 {
			d = m.RNG.Jitter(d, p.JitterFrac)
		}
		m.SetLine(p.Line)
		m.Exec(sim.Duration(d), p.rates(m.FreqGHz))
	}
	m.PopFrame()
}

// TruthPhases returns the kernel's ground-truth phase structure normalized
// to the kernel's own duration: for each phase, the cumulative end fraction
// and the true counter rates. This is what the experiments compare
// reconstructions against.
func (k *Kernel) TruthPhases(freqGHz float64) []TruthPhase {
	total := float64(k.NominalDur())
	out := make([]TruthPhase, 0, len(k.Phases))
	var cum float64
	for i := range k.Phases {
		p := &k.Phases[i]
		cum += float64(p.Dur)
		out = append(out, TruthPhase{
			Name:    p.Name,
			Routine: k.Name,
			Line:    p.Line,
			FracEnd: cum / total,
			Rates:   p.rates(freqGHz),
		})
	}
	out[len(out)-1].FracEnd = 1 // exact, despite float accumulation
	return out
}
