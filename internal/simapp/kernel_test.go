package simapp

import (
	"math"
	"testing"

	"phasefold/internal/callstack"
	"phasefold/internal/counters"
	"phasefold/internal/sim"
)

func testKernel() *Kernel {
	return &Kernel{
		Name: "test.k", File: "t.c", StartLine: 1, EndLine: 50,
		Phases: []PhaseSpec{
			{Name: "a", Line: 10, Dur: 100 * sim.Microsecond, IPC: 1.0, FPFrac: 0.5},
			{Name: "b", Line: 30, Dur: 300 * sim.Microsecond, IPC: 2.0},
		},
	}
}

func TestKernelDefineAndExec(t *testing.T) {
	syms := callstack.NewSymbolTable()
	k := testKernel()
	k.Define(syms)
	m := NewMachine(0, 2.0, sim.NewRNG(1))
	k.Exec(m, 1)
	if m.StackDepth() != 0 {
		t.Fatal("kernel left frames on the stack")
	}
	if got, want := m.Clock.Now(), 400*sim.Microsecond; got != want {
		t.Fatalf("duration %v, want %v", got, want)
	}
	// instructions: 100us at IPC 1 + 300us at IPC 2 (at 2 GHz):
	// 100e3ns*2 + 300e3ns*4 = 200e3+1200e3... per ns: IPC*2 instr.
	want := int64(100_000*2 + 300_000*4)
	if got := m.Counters()[counters.Instructions]; math.Abs(float64(got-want)) > 2 {
		t.Fatalf("instructions %d, want %d", got, want)
	}
}

func TestKernelExecScale(t *testing.T) {
	syms := callstack.NewSymbolTable()
	k := testKernel()
	k.Define(syms)
	m := NewMachine(0, 2.0, sim.NewRNG(1))
	k.Exec(m, 2)
	if got, want := m.Clock.Now(), 800*sim.Microsecond; got != want {
		t.Fatalf("scaled duration %v, want %v", got, want)
	}
}

func TestKernelStackDuringExec(t *testing.T) {
	syms := callstack.NewSymbolTable()
	k := testKernel()
	k.Define(syms)
	m := NewMachine(0, 2.0, sim.NewRNG(1))
	var lines []int
	m.AddObserver(observerFunc(func(m *Machine, t0, t1 sim.Time, at func(sim.Time) counters.Set) {
		s := m.Stack()
		if len(s) != 1 || s[0].Routine != k.Routine() {
			t.Errorf("stack during exec = %+v", s)
		}
		lines = append(lines, s[0].Line)
	}))
	k.Exec(m, 1)
	if len(lines) != 2 || lines[0] != 10 || lines[1] != 30 {
		t.Fatalf("observed lines %v, want [10 30]", lines)
	}
}

func TestKernelTruthPhases(t *testing.T) {
	k := testKernel()
	phases := k.TruthPhases(2.0)
	if len(phases) != 2 {
		t.Fatalf("got %d truth phases", len(phases))
	}
	if math.Abs(phases[0].FracEnd-0.25) > 1e-12 {
		t.Fatalf("phase a ends at %v, want 0.25", phases[0].FracEnd)
	}
	if phases[1].FracEnd != 1 {
		t.Fatalf("last phase ends at %v, want exactly 1", phases[1].FracEnd)
	}
	// Rates: IPC 1 at 2 GHz = 2e9 instructions/s -> MIPS 2000.
	if got := phases[0].MIPS(); math.Abs(got-2000) > 1e-9 {
		t.Fatalf("phase a MIPS %v, want 2000", got)
	}
	if phases[0].Routine != "test.k" || phases[0].Line != 10 {
		t.Fatalf("phase a attribution %q:%d", phases[0].Routine, phases[0].Line)
	}
}

func TestKernelPanics(t *testing.T) {
	syms := callstack.NewSymbolTable()
	cases := map[string]func(){
		"exec before define": func() {
			k := testKernel()
			k.Exec(NewMachine(0, 2, sim.NewRNG(1)), 1)
		},
		"no phases": func() {
			k := &Kernel{Name: "empty", File: "e.c", StartLine: 1, EndLine: 2}
			k.Define(syms)
		},
		"bad phase": func() {
			k := &Kernel{Name: "bad", File: "b.c", StartLine: 1, EndLine: 2,
				Phases: []PhaseSpec{{Name: "p", Dur: -1, IPC: 1}}}
			k.Define(syms)
		},
		"zero scale": func() {
			k := testKernel()
			k.Define(syms)
			k.Exec(NewMachine(0, 2, sim.NewRNG(1)), 0)
		},
		"routine before define": func() {
			k := testKernel()
			k.Routine()
		},
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPhaseSpecValidate(t *testing.T) {
	good := PhaseSpec{Name: "ok", Dur: sim.Microsecond, IPC: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	bad := []PhaseSpec{
		{Dur: sim.Microsecond, IPC: 1},                                // no name
		{Name: "x", IPC: 1},                                           // no duration
		{Name: "x", Dur: sim.Microsecond},                             // no IPC
		{Name: "x", Dur: sim.Microsecond, IPC: 1, JitterFrac: 0.9},    // jitter too big
		{Name: "x", Dur: sim.Microsecond, IPC: 1, LoadFrac: -0.1},     // negative mix
		{Name: "x", Dur: sim.Microsecond, IPC: 1, BranchMissPct: 150}, // pct out of range
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestPhaseJitterMovesDuration(t *testing.T) {
	syms := callstack.NewSymbolTable()
	k := &Kernel{Name: "j", File: "j.c", StartLine: 1, EndLine: 5,
		Phases: []PhaseSpec{{Name: "p", Line: 2, Dur: 100 * sim.Microsecond, IPC: 1, JitterFrac: 0.2}}}
	k.Define(syms)
	durs := make(map[sim.Time]bool)
	for i := 0; i < 5; i++ {
		m := NewMachine(int32(i), 2, sim.NewRNG(uint64(i+1)))
		k.Exec(m, 1)
		d := m.Clock.Now()
		if d < 80*sim.Microsecond || d > 120*sim.Microsecond {
			t.Fatalf("jittered duration %v outside ±20%%", d)
		}
		durs[d] = true
	}
	if len(durs) < 2 {
		t.Fatal("jitter produced identical durations across seeds")
	}
}
