// Package simapp is the execution substrate that stands in for the paper's
// real testbed: a deterministic virtual machine that "executes" SPMD
// mini-applications, advancing a virtual clock and accumulating hardware
// counters according to per-phase rate models, while exposing the same
// observation surface a real node exposes to a tracing runtime — probe
// points, periodic sampling, call stacks and PMU counter reads.
//
// The substitution preserves the behaviour that matters to the paper's
// mechanism: the analysis pipeline only ever sees (events, samples,
// counters, call stacks), and the virtual machine produces exactly those,
// with the decisive advantage that the ground-truth phase structure is known
// and reconstruction error can be measured exactly.
package simapp

import (
	"fmt"

	"phasefold/internal/callstack"
	"phasefold/internal/counters"
	"phasefold/internal/sim"
)

// ExecObserver is notified of every executed segment. Samplers attach here:
// within the callback they may query the counter state at any instant inside
// the segment, which models a sampling interrupt firing mid-segment.
type ExecObserver interface {
	// Observe reports execution from t0 to t1. counterAt returns the
	// cumulative (unmasked) counter state at any t in [t0, t1].
	Observe(m *Machine, t0, t1 sim.Time, counterAt func(sim.Time) counters.Set)
}

// Machine is one rank's virtual CPU: a clock, cumulative counters, the
// current call stack, and the PMU programming state (active multiplex
// group). All mutation happens through Exec, which keeps the counter
// evolution piecewise linear in time — the idealization the folding
// literature assumes for instantaneous-rate recovery.
type Machine struct {
	// Rank is the process rank this machine simulates.
	Rank int32
	// Clock is the rank's virtual clock.
	Clock *sim.Clock
	// RNG drives all stochastic behaviour of this rank.
	RNG *sim.RNG
	// FreqGHz is the core clock frequency; Cycles advance at this rate
	// regardless of the workload's other rates.
	FreqGHz float64
	// Power models the package energy counter; Exec derives the Energy
	// rate from the workload rates through it.
	Power PowerModel

	// ActiveGroup is the index of the PMU multiplex group currently
	// programmed; the tracing runtime rotates it. CapturedCounters masks
	// reads to ActiveIDs.
	ActiveGroup uint8
	// ActiveIDs are the counters readable under the active group.
	ActiveIDs []counters.ID

	accum     [counters.NumIDs]float64
	stack     callstack.Stack
	observers []ExecObserver
}

// NewMachine returns a machine for the given rank with its own clock and a
// generator split from parent for determinism across ranks.
func NewMachine(rank int32, freqGHz float64, parent *sim.RNG) *Machine {
	if freqGHz <= 0 {
		panic(fmt.Sprintf("simapp: non-positive frequency %v", freqGHz))
	}
	return &Machine{
		Rank:      rank,
		Clock:     sim.NewClock(),
		RNG:       parent.Split(),
		FreqGHz:   freqGHz,
		Power:     DefaultPowerModel(),
		ActiveIDs: counters.AllIDs(),
	}
}

// AddObserver attaches an execution observer (e.g. a sampler).
func (m *Machine) AddObserver(o ExecObserver) {
	m.observers = append(m.observers, o)
}

// Rates is the per-counter accumulation rate of a segment, in counts per
// second of virtual time.
type Rates [counters.NumIDs]float64

// Exec advances the machine by d while counters accumulate linearly at the
// given rates. Cycles always advance at the core frequency; any Cycles rate
// in r is ignored. Observers are notified before state is committed so they
// can interpolate counter values mid-segment.
func (m *Machine) Exec(d sim.Duration, r Rates) {
	if d < 0 {
		panic("simapp: Exec with negative duration")
	}
	if d == 0 {
		return
	}
	r[counters.Cycles] = m.FreqGHz * 1e9
	r[counters.Energy] = m.Power.EnergyRate(r)
	t0 := m.Clock.Now()
	t1 := t0 + d
	counterAt := func(t sim.Time) counters.Set {
		if t < t0 || t > t1 {
			panic(fmt.Sprintf("simapp: counter query at %d outside segment [%d,%d]", t, t0, t1))
		}
		dt := (t - t0).Seconds()
		var s counters.Set
		for i := range s {
			s[i] = int64(m.accum[i] + r[i]*dt)
		}
		return s
	}
	for _, o := range m.observers {
		o.Observe(m, t0, t1, counterAt)
	}
	secs := d.Seconds()
	for i := range m.accum {
		m.accum[i] += r[i] * secs
	}
	m.Clock.AdvanceTo(t1)
}

// Counters returns the cumulative unmasked counter state.
func (m *Machine) Counters() counters.Set {
	var s counters.Set
	for i := range s {
		s[i] = int64(m.accum[i])
	}
	return s
}

// CapturedCounters returns the counter state as the PMU exposes it: masked
// to the active multiplex group.
func (m *Machine) CapturedCounters() counters.Set {
	return m.Counters().MaskedTo(m.ActiveIDs)
}

// PushFrame enters a routine: the frame joins the call stack.
func (m *Machine) PushFrame(f callstack.Frame) {
	m.stack = append(m.stack, f)
}

// PopFrame leaves the innermost routine. It panics on an empty stack, which
// indicates a workload model bug.
func (m *Machine) PopFrame() {
	if len(m.stack) == 0 {
		panic("simapp: PopFrame on empty stack")
	}
	m.stack = m.stack[:len(m.stack)-1]
}

// SetLine updates the source line of the executing (leaf) frame, modelling
// the program counter moving through a routine body.
func (m *Machine) SetLine(line int) {
	if len(m.stack) == 0 {
		panic("simapp: SetLine with empty stack")
	}
	m.stack[len(m.stack)-1].Line = line
}

// Stack returns a copy of the current call stack, outermost first.
func (m *Machine) Stack() callstack.Stack {
	return m.stack.Clone()
}

// StackDepth returns the current call depth.
func (m *Machine) StackDepth() int { return len(m.stack) }
