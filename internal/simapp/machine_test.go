package simapp

import (
	"math"
	"testing"

	"phasefold/internal/callstack"
	"phasefold/internal/counters"
	"phasefold/internal/sim"
)

func newTestMachine() *Machine {
	return NewMachine(0, 2.0, sim.NewRNG(1))
}

func TestExecAdvancesClockAndCounters(t *testing.T) {
	m := newTestMachine()
	var r Rates
	r[counters.Instructions] = 1e9 // 1 instruction per ns
	m.Exec(1*sim.Millisecond, r)
	if m.Clock.Now() != 1*sim.Millisecond {
		t.Fatalf("clock at %v", m.Clock.Now())
	}
	c := m.Counters()
	if got := c[counters.Instructions]; got != 1_000_000 {
		t.Fatalf("instructions = %d, want 1e6", got)
	}
	// Cycles always run at the core frequency (2 GHz -> 2e6 per ms).
	if got := c[counters.Cycles]; got != 2_000_000 {
		t.Fatalf("cycles = %d, want 2e6", got)
	}
}

func TestExecOverridesCyclesRate(t *testing.T) {
	m := newTestMachine()
	var r Rates
	r[counters.Cycles] = 123 // must be ignored
	m.Exec(sim.Millisecond, r)
	if got := m.Counters()[counters.Cycles]; got != 2_000_000 {
		t.Fatalf("cycles = %d; Exec must pin cycles to the core frequency", got)
	}
}

func TestExecAccumulationHasNoDrift(t *testing.T) {
	// Many small segments must accumulate exactly like one big segment
	// (float accumulators, integerized on read).
	m1 := newTestMachine()
	m2 := newTestMachine()
	var r Rates
	r[counters.Instructions] = 3.7e8 // non-integer per-ns rate
	for i := 0; i < 1000; i++ {
		m1.Exec(10*sim.Microsecond, r)
	}
	m2.Exec(10*sim.Millisecond, r)
	a := m1.Counters()[counters.Instructions]
	b := m2.Counters()[counters.Instructions]
	if math.Abs(float64(a-b)) > 2 {
		t.Fatalf("accumulation drift: %d vs %d", a, b)
	}
}

func TestExecZeroDurationIsNoop(t *testing.T) {
	m := newTestMachine()
	fired := false
	m.AddObserver(observerFunc(func(*Machine, sim.Time, sim.Time, func(sim.Time) counters.Set) { fired = true }))
	m.Exec(0, Rates{})
	if fired || m.Clock.Now() != 0 {
		t.Fatal("zero-duration Exec had effects")
	}
}

func TestExecNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Exec did not panic")
		}
	}()
	newTestMachine().Exec(-1, Rates{})
}

type observerFunc func(*Machine, sim.Time, sim.Time, func(sim.Time) counters.Set)

func (f observerFunc) Observe(m *Machine, t0, t1 sim.Time, at func(sim.Time) counters.Set) {
	f(m, t0, t1, at)
}

func TestObserverInterpolation(t *testing.T) {
	m := newTestMachine()
	var r Rates
	r[counters.Instructions] = 1e9
	var midIns int64
	m.AddObserver(observerFunc(func(m *Machine, t0, t1 sim.Time, at func(sim.Time) counters.Set) {
		mid := (t0 + t1) / 2
		midIns = at(mid)[counters.Instructions]
	}))
	m.Exec(1*sim.Millisecond, r)
	if midIns != 500_000 {
		t.Fatalf("mid-segment instructions = %d, want 500000", midIns)
	}
}

func TestObserverQueryOutsideSegmentPanics(t *testing.T) {
	m := newTestMachine()
	m.AddObserver(observerFunc(func(m *Machine, t0, t1 sim.Time, at func(sim.Time) counters.Set) {
		defer func() {
			if recover() == nil {
				t.Error("out-of-segment query did not panic")
			}
		}()
		at(t1 + 1)
	}))
	m.Exec(sim.Microsecond, Rates{})
}

func TestStackDiscipline(t *testing.T) {
	m := newTestMachine()
	m.PushFrame(callstack.Frame{Routine: 1, Line: 10})
	m.PushFrame(callstack.Frame{Routine: 2, Line: 20})
	m.SetLine(25)
	s := m.Stack()
	if len(s) != 2 || s[1].Line != 25 || s[1].Routine != 2 {
		t.Fatalf("stack = %+v", s)
	}
	m.PopFrame()
	if m.StackDepth() != 1 {
		t.Fatalf("depth = %d", m.StackDepth())
	}
	// Stack() must return a copy.
	s2 := m.Stack()
	s2[0].Line = 999
	if m.Stack()[0].Line == 999 {
		t.Fatal("Stack() shares storage")
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PopFrame on empty stack did not panic")
		}
	}()
	newTestMachine().PopFrame()
}

func TestSetLineEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetLine on empty stack did not panic")
		}
	}()
	newTestMachine().SetLine(3)
}

func TestCapturedCountersMasking(t *testing.T) {
	m := newTestMachine()
	var r Rates
	r[counters.Instructions] = 1e9
	r[counters.L1DMisses] = 1e6
	m.Exec(sim.Millisecond, r)
	m.ActiveIDs = []counters.ID{counters.Instructions}
	cc := m.CapturedCounters()
	if _, ok := cc.Get(counters.L1DMisses); ok {
		t.Fatal("masked counter leaked through CapturedCounters")
	}
	if v, ok := cc.Get(counters.Instructions); !ok || v != 1_000_000 {
		t.Fatalf("captured instructions = (%d, %v)", v, ok)
	}
}

func TestNewMachinePanicsOnBadFreq(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero frequency did not panic")
		}
	}()
	NewMachine(0, 0, sim.NewRNG(1))
}

func TestMachinesPerRankDiffer(t *testing.T) {
	root := sim.NewRNG(42)
	m0 := NewMachine(0, 2, root)
	m1 := NewMachine(1, 2, root)
	if m0.RNG.Uint64() == m1.RNG.Uint64() {
		t.Fatal("per-rank RNG streams identical")
	}
}
