package simapp

import "phasefold/internal/counters"

// PowerModel estimates package power from the executing workload's counter
// rates, standing in for the RAPL energy readings the power-folding work
// consumed (Servat et al., CCPE 2013). The model is the usual first-order
// decomposition: a static floor, a dynamic core term growing with IPC, and
// a DRAM/uncore term charged per last-level-cache miss.
type PowerModel struct {
	// BaseW is static package power in watts.
	BaseW float64
	// PerIPCW is dynamic core power per unit of IPC, in watts.
	PerIPCW float64
	// NJPerL3Miss charges the DRAM access energy, in nanojoules per miss.
	NJPerL3Miss float64
	// NJPerFPOp charges the FP unit energy, in nanojoules per operation.
	NJPerFPOp float64
}

// DefaultPowerModel returns coefficients giving a plausible 15-50 W span
// across the bundled workloads' phases.
func DefaultPowerModel() PowerModel {
	return PowerModel{BaseW: 15, PerIPCW: 9, NJPerL3Miss: 60, NJPerFPOp: 0.6}
}

// EnergyRate returns the energy accumulation rate, in nanojoules per
// second, for a workload running at the given counter rates.
func (p PowerModel) EnergyRate(r Rates) float64 {
	ipc := 0.0
	if r[counters.Cycles] > 0 {
		ipc = r[counters.Instructions] / r[counters.Cycles]
	}
	watts := p.BaseW + p.PerIPCW*ipc
	return watts*1e9 + p.NJPerL3Miss*r[counters.L3Misses] + p.NJPerFPOp*r[counters.FPOps]
}

// PowerW returns the model's instantaneous power in watts at the given
// rates.
func (p PowerModel) PowerW(r Rates) float64 {
	return p.EnergyRate(r) / 1e9
}
