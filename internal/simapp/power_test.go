package simapp

import (
	"math"
	"testing"

	"phasefold/internal/counters"
	"phasefold/internal/sim"
)

func TestPowerModelComponents(t *testing.T) {
	p := PowerModel{BaseW: 10, PerIPCW: 5, NJPerL3Miss: 100, NJPerFPOp: 1}
	var r Rates
	r[counters.Cycles] = 2e9
	r[counters.Instructions] = 4e9 // IPC 2
	r[counters.L3Misses] = 1e6
	r[counters.FPOps] = 1e9
	// 10 + 5*2 = 20 W core; + 1e6*100 nJ/s = 0.1 W; + 1e9*1 nJ/s = 1 W.
	if got := p.PowerW(r); math.Abs(got-21.1) > 1e-9 {
		t.Fatalf("PowerW = %v, want 21.1", got)
	}
	if got := p.EnergyRate(r); math.Abs(got-21.1e9) > 1 {
		t.Fatalf("EnergyRate = %v", got)
	}
}

func TestPowerModelZeroCycles(t *testing.T) {
	p := DefaultPowerModel()
	var r Rates
	if got := p.PowerW(r); math.Abs(got-p.BaseW) > 1e-9 {
		t.Fatalf("idle power %v, want base %v", got, p.BaseW)
	}
}

func TestMachineAccumulatesEnergy(t *testing.T) {
	m := NewMachine(0, 2.0, sim.NewRNG(1))
	var r Rates
	r[counters.Instructions] = 4e9 // IPC 2 at 2 GHz
	m.Exec(sim.Millisecond, r)
	e := m.Counters()[counters.Energy]
	// Default model: 15 + 9*2 = 33 W -> 33e9 nJ/s -> 33e6 nJ per ms.
	want := DefaultPowerModel().EnergyRate(Rates{
		counters.Instructions: 4e9, counters.Cycles: 2e9,
	}) / 1000
	if math.Abs(float64(e)-want) > want*0.01 {
		t.Fatalf("energy after 1 ms = %d nJ, want ~%.0f", e, want)
	}
}

func TestTruthRatesIncludeEnergy(t *testing.T) {
	k := testKernel()
	for _, ph := range k.TruthPhases(2.0) {
		if ph.Rates[counters.Energy] <= 0 {
			t.Fatalf("truth phase %q has no energy rate", ph.Name)
		}
		// Truth energy rate must match what a machine would accumulate:
		// both go through DefaultPowerModel.
		watts := ph.Rates[counters.Energy] / 1e9
		if watts < 10 || watts > 60 {
			t.Fatalf("truth phase %q power %v W implausible", ph.Name, watts)
		}
	}
}

func TestEnergyMonotoneAcrossWorkloads(t *testing.T) {
	// Higher IPC at equal duration must accumulate more energy.
	run := func(ipc float64) int64 {
		m := NewMachine(0, 2.0, sim.NewRNG(1))
		var r Rates
		r[counters.Instructions] = ipc * 2e9
		m.Exec(sim.Millisecond, r)
		return m.Counters()[counters.Energy]
	}
	if run(2.5) <= run(0.5) {
		t.Fatal("energy not monotone in IPC")
	}
}
