package simapp

import (
	"fmt"
	"sort"
)

// NewApp instantiates a bundled application by name. The "-opt" suffix
// selects the guided-optimization variant where one exists.
func NewApp(name string) (App, error) {
	switch name {
	case "multiphase":
		return NewMultiphase(), nil
	case "cg":
		return NewCGSolver(), nil
	case "cg-opt":
		a := NewCGSolver()
		a.Optimized = true
		return a, nil
	case "stencil":
		return NewStencil(), nil
	case "stencil-opt":
		a := NewStencil()
		a.Optimized = true
		return a, nil
	case "nbody":
		return NewNBody(), nil
	case "nbody-opt":
		a := NewNBody()
		a.Optimized = true
		return a, nil
	case "amr":
		return NewAMR(), nil
	}
	return nil, fmt.Errorf("simapp: unknown application %q (have %v)", name, AppNames())
}

// AppNames lists the bundled application names in sorted order.
func AppNames() []string {
	names := []string{
		"multiphase", "cg", "cg-opt", "stencil", "stencil-opt",
		"nbody", "nbody-opt", "amr",
	}
	sort.Strings(names)
	return names
}

// DefaultConfig returns the run configuration the examples and experiments
// use unless they override it.
func DefaultConfig() Config {
	return Config{Ranks: 4, Iterations: 200, Seed: 42, FreqGHz: 2.0}
}
