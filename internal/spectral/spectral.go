// Package spectral implements the signal-analysis stage of the tool chain
// (Llort et al., "Trace spectral analysis toward dynamic levels of detail",
// ICPADS 2011): it derives a performance signal from the sample stream,
// detects the application's iteration period by autocorrelation, and selects
// a representative window of iterations for detailed analysis.
//
// Its role in this reproduction: when a trace carries no iteration markers
// at all (sampling-only acquisition), the detected period still tells the
// analysis where the repetitive structure is, and which stretch of the
// timeline is worth folding.
package spectral

import (
	"fmt"
	"math"

	"phasefold/internal/counters"
	"phasefold/internal/sim"
	"phasefold/internal/trace"
)

// Signal is a uniformly resampled performance signal derived from one
// rank's samples: the instantaneous rate of a chosen counter over time.
type Signal struct {
	// Start is the timestamp of the first cell.
	Start sim.Time
	// Step is the cell width.
	Step sim.Duration
	// Values holds the per-cell rate (counts per second).
	Values []float64
}

// Duration returns the signal's covered time span.
func (s *Signal) Duration() sim.Duration {
	return sim.Duration(len(s.Values)) * s.Step
}

// BuildSignal derives the rate signal of counter id for one rank from its
// sample stream, resampled onto a uniform grid of the given step. Cells
// between two samples inherit the mean rate of the enclosing sample
// interval; leading/trailing cells without coverage are zero.
func BuildSignal(tr *trace.Trace, rank int, id counters.ID, step sim.Duration) (*Signal, error) {
	if step <= 0 {
		return nil, fmt.Errorf("spectral: non-positive step %d", step)
	}
	rd, err := tr.RankChecked(rank) // rank numbers arrive from CLI flags
	if err != nil {
		return nil, fmt.Errorf("spectral: %w", err)
	}
	if rd == nil {
		return nil, fmt.Errorf("spectral: rank %d has no records", rank)
	}
	if len(rd.Samples) < 2 {
		return nil, fmt.Errorf("spectral: rank %d has %d samples, need at least 2", rank, len(rd.Samples))
	}
	first, last := rd.Samples[0].Time, rd.Samples[len(rd.Samples)-1].Time
	n := int((last-first)/step) + 1
	if n < 8 {
		return nil, fmt.Errorf("spectral: signal would have only %d cells; use a smaller step", n)
	}
	sig := &Signal{Start: first, Step: step, Values: make([]float64, n)}
	prev := rd.Samples[0]
	for _, s := range rd.Samples[1:] {
		v1, ok1 := prev.Counters.Get(id)
		v2, ok2 := s.Counters.Get(id)
		dt := s.Time - prev.Time
		if ok1 && ok2 && dt > 0 && v2 >= v1 {
			rate := float64(v2-v1) / dt.Seconds()
			// Spread the interval's mean rate over the covered cells.
			c0 := int((prev.Time - first) / step)
			c1 := int((s.Time - first) / step)
			for c := c0; c <= c1 && c < n; c++ {
				sig.Values[c] = rate
			}
		}
		prev = s
	}
	return sig, nil
}

// Autocorrelation returns the normalized autocorrelation of the signal for
// lags 1..maxLag (index 0 of the result is lag 1). Values lie in [-1, 1].
func Autocorrelation(values []float64, maxLag int) []float64 {
	n := len(values)
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 1 {
		return nil
	}
	mean := sim.Mean(values)
	var denom float64
	for _, v := range values {
		d := v - mean
		denom += d * d
	}
	out := make([]float64, maxLag)
	if denom == 0 {
		return out
	}
	for lag := 1; lag <= maxLag; lag++ {
		var num float64
		for i := 0; i+lag < n; i++ {
			num += (values[i] - mean) * (values[i+lag] - mean)
		}
		out[lag-1] = num / denom
	}
	return out
}

// Period is a detected periodicity.
type Period struct {
	// Lag is the period expressed in signal cells.
	Lag int
	// Duration is the period in virtual time.
	Duration sim.Duration
	// Strength is the autocorrelation value at the period lag.
	Strength float64
}

// DetectPeriod finds the dominant periodicity of the signal: the first
// local maximum of the autocorrelation whose strength exceeds minStrength,
// refined by preferring the fundamental over its harmonics (a lag whose
// half also scores high is replaced by the half).
func DetectPeriod(sig *Signal, minStrength float64) (Period, error) {
	maxLag := len(sig.Values) / 2
	ac := Autocorrelation(sig.Values, maxLag)
	if len(ac) == 0 {
		return Period{}, fmt.Errorf("spectral: signal too short for period detection")
	}
	best := -1
	for lag := 2; lag < len(ac); lag++ {
		// ac index is lag-1.
		if ac[lag-1] >= minStrength && ac[lag-1] >= ac[lag-2] && ac[lag-1] >= ac[lag] {
			best = lag
			break
		}
	}
	if best < 0 {
		return Period{}, fmt.Errorf("spectral: no periodicity above strength %.2f", minStrength)
	}
	// Prefer the fundamental: if a local peak near best/2 is also strong,
	// descend (repeatedly) — the first peak found may be a multiple when
	// the first iterations are noisy.
	for best >= 4 {
		half := best / 2
		// Search a small neighbourhood around half for a peak.
		bestHalf, bestVal := -1, minStrength
		for lag := half - 1; lag <= half+1 && lag-1 < len(ac); lag++ {
			if lag >= 2 && ac[lag-1] > bestVal {
				bestHalf, bestVal = lag, ac[lag-1]
			}
		}
		if bestHalf < 0 {
			break
		}
		best = bestHalf
	}
	return Period{
		Lag:      best,
		Duration: sim.Duration(best) * sig.Step,
		Strength: ac[best-1],
	}, nil
}

// Window is a selected stretch of the timeline.
type Window struct {
	Start sim.Time
	End   sim.Time
	// Score is the self-similarity of the window (mean autocorrelation at
	// the period lag computed within the window).
	Score float64
}

// SelectRepresentative picks the window of nPeriods consecutive periods
// whose internal behaviour is most self-similar — the stretch the ICPADS'11
// tool would trace at full detail. The search slides period-by-period.
func SelectRepresentative(sig *Signal, p Period, nPeriods int) (Window, error) {
	if nPeriods < 2 {
		return Window{}, fmt.Errorf("spectral: need at least 2 periods, got %d", nPeriods)
	}
	win := p.Lag * nPeriods
	if win > len(sig.Values) {
		return Window{}, fmt.Errorf("spectral: window of %d periods exceeds the signal", nPeriods)
	}
	bestStart, bestScore := 0, math.Inf(-1)
	for start := 0; start+win <= len(sig.Values); start += p.Lag {
		seg := sig.Values[start : start+win]
		ac := Autocorrelation(seg, p.Lag)
		if len(ac) < p.Lag {
			continue
		}
		score := ac[p.Lag-1]
		if score > bestScore {
			bestScore = score
			bestStart = start
		}
	}
	if math.IsInf(bestScore, -1) {
		return Window{}, fmt.Errorf("spectral: no scorable window")
	}
	return Window{
		Start: sig.Start + sim.Time(bestStart)*sig.Step,
		End:   sig.Start + sim.Time(bestStart+win)*sig.Step,
		Score: bestScore,
	}, nil
}
