package spectral

import (
	"math"
	"testing"

	"phasefold/internal/core"
	"phasefold/internal/counters"
	"phasefold/internal/sim"
	"phasefold/internal/simapp"
	"phasefold/internal/trace"
)

// acquire runs an app and returns its trace plus the true mean iteration
// duration of rank 0 (from the iteration markers, which the spectral path
// itself does not use).
func acquire(t *testing.T, name string, period sim.Duration, iters int) (*trace.Trace, sim.Duration) {
	t.Helper()
	app, err := simapp.NewApp(name)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.SamplingPeriod = period
	cfg := simapp.Config{Ranks: 1, Iterations: iters, Seed: 5, FreqGHz: 2}
	run, err := core.RunApp(app, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	var first, last sim.Time
	n := 0
	for _, e := range run.Trace.Ranks[0].Events {
		if e.Type == trace.IterBegin {
			if n == 0 {
				first = e.Time
			}
			last = e.Time
			n++
		}
	}
	if n < 2 {
		t.Fatal("not enough iterations")
	}
	return run.Trace, (last - first) / sim.Duration(n-1)
}

func TestBuildSignal(t *testing.T) {
	tr, _ := acquire(t, "multiphase", 100*sim.Microsecond, 50)
	sig, err := BuildSignal(tr, 0, counters.Instructions, 50*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig.Values) < 100 {
		t.Fatalf("signal has %d cells", len(sig.Values))
	}
	nonzero := 0
	for _, v := range sig.Values {
		if v < 0 {
			t.Fatal("negative rate in signal")
		}
		if v > 0 {
			nonzero++
		}
	}
	if nonzero < len(sig.Values)/2 {
		t.Fatalf("signal mostly empty: %d/%d non-zero", nonzero, len(sig.Values))
	}
}

func TestBuildSignalValidation(t *testing.T) {
	tr, _ := acquire(t, "multiphase", 100*sim.Microsecond, 10)
	if _, err := BuildSignal(tr, 0, counters.Instructions, 0); err == nil {
		t.Fatal("zero step accepted")
	}
	empty := trace.New("e", 1, nil, nil)
	if _, err := BuildSignal(empty, 0, counters.Instructions, sim.Millisecond); err == nil {
		t.Fatal("sample-less trace accepted")
	}
}

func TestAutocorrelationOfSine(t *testing.T) {
	const period = 50
	values := make([]float64, 1000)
	for i := range values {
		values[i] = math.Sin(2 * math.Pi * float64(i) / period)
	}
	ac := Autocorrelation(values, 200)
	// Strong positive at the period, strong negative at half period.
	if ac[period-1] < 0.9 {
		t.Fatalf("autocorrelation at period = %v", ac[period-1])
	}
	if ac[period/2-1] > -0.9 {
		t.Fatalf("autocorrelation at half period = %v", ac[period/2-1])
	}
}

func TestAutocorrelationDegenerate(t *testing.T) {
	if got := Autocorrelation([]float64{1, 1, 1, 1}, 2); got[0] != 0 || got[1] != 0 {
		t.Fatal("constant signal autocorrelation not zero")
	}
	if got := Autocorrelation([]float64{1}, 5); got != nil {
		t.Fatal("too-short signal should return nil")
	}
}

func TestDetectPeriodMatchesIterationDuration(t *testing.T) {
	for _, name := range []string{"multiphase", "cg", "stencil"} {
		tr, trueIter := acquire(t, name, 100*sim.Microsecond, 80)
		sig, err := BuildSignal(tr, 0, counters.Instructions, 50*sim.Microsecond)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p, err := DetectPeriod(sig, 0.3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rel := math.Abs(float64(p.Duration)-float64(trueIter)) / float64(trueIter)
		if rel > 0.10 {
			t.Errorf("%s: detected period %v vs true iteration %v (%.0f%% off)",
				name, p.Duration, trueIter, 100*rel)
		}
	}
}

func TestDetectPeriodRejectsNoise(t *testing.T) {
	rng := sim.NewRNG(3)
	sig := &Signal{Step: sim.Millisecond, Values: make([]float64, 400)}
	for i := range sig.Values {
		sig.Values[i] = rng.Float64()
	}
	if p, err := DetectPeriod(sig, 0.5); err == nil {
		t.Fatalf("period %+v detected in white noise", p)
	}
}

func TestSelectRepresentative(t *testing.T) {
	tr, _ := acquire(t, "multiphase", 100*sim.Microsecond, 100)
	sig, err := BuildSignal(tr, 0, counters.Instructions, 50*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	p, err := DetectPeriod(sig, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := SelectRepresentative(sig, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if w.End <= w.Start {
		t.Fatalf("window = %+v", w)
	}
	want := 8 * p.Duration
	got := w.End - w.Start
	if got != want {
		t.Fatalf("window spans %v, want %v", got, want)
	}
	if w.Score < 0.3 {
		t.Fatalf("window score %v", w.Score)
	}
	if w.End > sig.Start+sig.Duration() {
		t.Fatal("window exceeds the signal")
	}
}

func TestSelectRepresentativeValidation(t *testing.T) {
	sig := &Signal{Step: sim.Millisecond, Values: make([]float64, 50)}
	p := Period{Lag: 10, Duration: 10 * sim.Millisecond}
	if _, err := SelectRepresentative(sig, p, 1); err == nil {
		t.Fatal("1-period window accepted")
	}
	if _, err := SelectRepresentative(sig, p, 100); err == nil {
		t.Fatal("oversized window accepted")
	}
}
