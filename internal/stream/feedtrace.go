package stream

import (
	"fmt"

	"phasefold/internal/core"
	"phasefold/internal/trace"
)

// FeedTrace streams a resident trace through the session — the batch driver
// over the incremental engine, and the equivalence bridge the tests pin:
// FeedTrace + Done over any trace produces the byte-identical model batch
// core.Analyze produces.
//
// The session's incremental validator drops a whole rank on the first bad
// record, but batch lenient analysis first repairs what trace.Sanitize can
// (then drops only the still-invalid ranks). A resident trace allows the
// same repair, so FeedTrace replays batch prepare verbatim — validate,
// clone + sanitize, re-validate per rank — and feeds the repaired records,
// carrying the sanitize diagnostics into the session so Done reports them
// in batch order. It must be the session's only input: mixing it with Feed
// would interleave records the repair pass never saw.
func (s *Session) FeedTrace(tr *trace.Trace) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return ErrFinished
	}
	if s.failed != nil {
		return s.failed
	}
	for r := range s.ranks {
		if rs := &s.ranks[r]; rs.events+rs.samples > 0 || rs.dropped {
			return fmt.Errorf("stream: FeedTrace on a session already fed")
		}
	}
	if tr.NumRanks() != len(s.ranks) {
		return fmt.Errorf("stream: trace has %d ranks, session header declares %d (%w)",
			tr.NumRanks(), len(s.ranks), trace.ErrInvalid)
	}
	work := tr
	if err := tr.Validate(); err != nil {
		if s.opt.Core.Strict {
			s.failed = fmt.Errorf("core: validating trace: %w", err)
			return s.failed
		}
		work = tr.Clone()
		for _, p := range work.Sanitize() {
			s.preDiags = append(s.preDiags, core.Diagnostic{
				Stage: "sanitize", Kind: core.KindRepair, Severity: core.SeverityWarn,
				Rank: p.Rank, Cluster: -1,
				Message: fmt.Sprintf("%s: %d records (%s)", p.Kind, p.Count, p.Detail),
			})
		}
		for r := range work.Ranks {
			if err := work.ValidateRank(r); err != nil {
				work.Ranks[r].Events = nil
				work.Ranks[r].Samples = nil
				s.ranks[r].dropped = true
				s.ranks[r].dropErr = err
			}
		}
	}
	for r := 0; r < work.NumRanks(); r++ {
		rd := work.Ranks[r]
		if rd == nil || s.ranks[r].dropped {
			continue
		}
		if err := s.feedLocked(trace.Chunk{Rank: r, Events: rd.Events, Samples: rd.Samples}); err != nil {
			return err
		}
	}
	return nil
}
