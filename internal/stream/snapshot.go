package stream

import (
	"sort"

	"phasefold/internal/cluster"
	"phasefold/internal/counters"
	"phasefold/internal/folding"
	"phasefold/internal/pwl"
	"phasefold/internal/sim"
	"phasefold/internal/trace"
)

// PhasePreview is one provisional phase of a forming cluster: an interval of
// normalized burst time with a roughly constant instruction rate.
type PhasePreview struct {
	X0, X1 float64
	// Slope is the fitted normalized instruction slope over [X0, X1);
	// multiplied by the cluster's rate scale it becomes an absolute rate.
	Slope float64
}

// ClusterState is the live view of one provisional cluster.
type ClusterState struct {
	// Label is the provisional cluster label (frozen-model labels; the
	// final Done result re-clusters and may relabel).
	Label int
	// Bursts counts members so far.
	Bursts int
	// RepDuration is the representative (median) member duration.
	RepDuration sim.Duration
	// Points is the folded instruction-cloud size backing the preview fit.
	Points int
	// Fitted reports whether the cloud was dense enough for a preview
	// regression; Breakpoints and Phases are only meaningful when set.
	Fitted      bool
	Breakpoints []float64
	Phases      []PhasePreview
}

// Snapshot is a point-in-time view of the analysis forming inside a session.
// It is a snapshot of provisional state: cluster labels come from the frozen
// assignment model and are overwritten by the full re-clustering Done runs.
type Snapshot struct {
	// Bursts counts computation bursts completed so far.
	Bursts int
	// Buffered is the current pending-record buffer; Peak its high water.
	Buffered, Peak int
	// Trained reports whether the provisional assignment model exists yet
	// (it is trained once TrainAfter bursts have completed); TrainedOn is
	// the population it was last trained on.
	Trained   bool
	TrainedOn int
	// Clusters counts the frozen model's clusters; Noise the bursts the
	// model could not place since it was last trained.
	Clusters, Noise int
	// States describes each provisional cluster, ascending by label.
	States []ClusterState
}

// Snapshot returns the current provisional view, recomputing it when at
// least SnapshotEvery bursts landed since the previous computation (and
// training or retraining the provisional clustering model when due).
// Sessions that were never snapshotted pay nothing for the mechanism.
func (s *Session) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished || s.failed != nil {
		return s.snap
	}
	s.maybeTrain()
	if s.snap != nil && s.totalBursts-s.snapAt < s.opt.SnapshotEvery {
		return s.snap
	}
	s.snap = s.computeSnapshot()
	s.snapAt = s.totalBursts
	return s.snap
}

// maybeTrain trains the provisional assignment model once enough bursts
// completed, and retrains it when the stream drifted away from it (the
// re-cluster fallback: too many arriving bursts land as noise).
func (s *Session) maybeTrain() {
	retrain := s.assignor == nil && s.totalBursts >= s.opt.TrainAfter
	if s.assignor != nil && s.assigned >= 32 &&
		float64(s.noise) > reclusterNoiseFrac*float64(s.assigned) &&
		s.totalBursts >= 2*s.assignor.TrainedOn() {
		retrain = true
	}
	if !retrain {
		return
	}
	// Train on copies: the training pass writes labels, and the authoritative
	// relabelling of the session's own bursts goes through Assign below so
	// every burst — trained-on or later — is labelled by the same rule.
	pop := make([]trace.Burst, 0, s.totalBursts)
	for r := range s.ranks {
		pop = append(pop, s.ranks[r].bursts...)
	}
	if len(pop) == 0 {
		return
	}
	a, err := cluster.TrainAssignor(s.ctx, pop, s.opt.Core.Features, s.opt.Core.DBSCAN)
	if err != nil {
		return // not enough signal yet; try again at the next snapshot
	}
	s.assignor = a
	s.assigned, s.noise = 0, 0
	for r := range s.ranks {
		rs := &s.ranks[r]
		for i := range rs.bursts {
			b := &rs.bursts[i]
			b.Cluster = a.Assign(b)
			s.assigned++
			if b.Cluster == cluster.Noise {
				s.noise++
			}
		}
	}
}

func (s *Session) computeSnapshot() *Snapshot {
	snap := &Snapshot{
		Bursts:   s.totalBursts,
		Buffered: s.pendingTot,
		Peak:     s.pendingPeak,
	}
	if s.assignor == nil {
		return snap
	}
	snap.Trained = true
	snap.TrainedOn = s.assignor.TrainedOn()
	snap.Clusters = s.assignor.NumClusters()
	snap.Noise = s.noise

	// Assemble the provisional population and its clouds once; FoldWith
	// selects each label's members from it.
	var bursts []trace.Burst
	clouds := make(map[folding.BurstKey]*folding.BurstCloud)
	labels := map[int]bool{}
	for r := range s.ranks {
		rs := &s.ranks[r]
		if rs.dropped || rs.extractErr != nil {
			continue
		}
		bursts = append(bursts, rs.bursts...)
		for k, c := range rs.clouds {
			clouds[k] = c
		}
		for i := range rs.bursts {
			if l := rs.bursts[i].Cluster; l >= 0 {
				labels[l] = true
			}
		}
	}
	project := folding.CloudProjector(clouds)
	order := make([]int, 0, len(labels))
	for l := range labels {
		order = append(order, l)
	}
	sort.Ints(order)
	for _, l := range order {
		st := ClusterState{Label: l}
		for i := range bursts {
			if bursts[i].Cluster == l {
				st.Bursts++
			}
		}
		f, err := folding.FoldWith(project, bursts, l, s.opt.Core.Folding)
		if err == nil {
			st.RepDuration = f.RepDuration
			st.Points = f.NumPoints(counters.Instructions)
			if st.Points >= s.opt.Core.MinFoldedPoints {
				s.previewFit(&st, f)
			}
		}
		snap.States = append(snap.States, st)
	}
	return snap
}

// previewFit regresses the instruction cloud into the provisional phase
// boundaries. Failures just leave the state unfitted — a snapshot never
// degrades the session.
func (s *Session) previewFit(st *ClusterState, f *folding.Folded) {
	pts := f.Points[counters.Instructions]
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p.X, p.Y
	}
	fit, err := pwl.FitContext(s.ctx, xs, ys, s.opt.Core.PWL)
	if err != nil {
		return
	}
	st.Fitted = true
	st.Breakpoints = fit.Breakpoints
	for _, seg := range fit.Segments() {
		st.Phases = append(st.Phases, PhasePreview{X0: seg.X0, X1: seg.X1, Slope: seg.Slope})
	}
}
