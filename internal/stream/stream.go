// Package stream implements the incremental analysis engine: a Session
// accepts record chunks as they arrive — from a ChunkReader decoding a
// socket, or from a resident trace fed in one shot — and maintains the
// batch pipeline's per-stage state machines online: per-rank validation and
// burst extraction with carry-over, health accumulators, eager folding
// clouds built at sample-attach time, and a provisional cluster assignment
// against a frozen model for live snapshots. Done hands the accumulated
// bursts, clouds, and diagnostics to core.AnalyzeBursts, whose output is
// byte-identical to batch core.Analyze over the same records: every
// incremental structure either is the batch implementation (the extractor,
// the health observer, the folding algebra) or replays into the batch code
// path in the exact order the batch run would have produced.
//
// A Session retains no raw events and only a bounded window of samples (the
// ones that may still attach to a burst that has not closed yet); what grows
// with the trace is the burst list and the folded clouds — the analysis
// output itself — not the input records.
package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"phasefold/internal/callstack"
	"phasefold/internal/cluster"
	"phasefold/internal/core"
	"phasefold/internal/counters"
	"phasefold/internal/folding"
	"phasefold/internal/sim"
	"phasefold/internal/trace"
)

// ErrWindow reports that a Feed would exceed the session's record window:
// the stream carries more not-yet-attachable samples than the session is
// configured to buffer.
var ErrWindow = errors.New("stream: record window exceeded")

// ErrFinished reports a Feed or Done on a session Done already consumed.
var ErrFinished = errors.New("stream: session already finished")

// Options configures a streaming session.
type Options struct {
	// Core is the full pipeline configuration, shared verbatim with batch
	// Analyze: strictness, budgets, clustering, folding, fitting.
	Core core.Options
	// Window caps the records the session may buffer — the pending samples
	// that cannot attach to a burst yet. Feeds that would exceed it fail
	// with ErrWindow. Zero means DefaultWindow.
	Window int
	// SnapshotEvery is the snapshot recompute cadence in bursts: Snapshot
	// returns the cached view until at least this many new bursts landed.
	// Zero means DefaultSnapshotEvery.
	SnapshotEvery int
	// TrainAfter is how many bursts the provisional assignment model is
	// trained on. Zero means DefaultTrainAfter.
	TrainAfter int
}

// The option defaults.
const (
	DefaultWindow        = 1 << 16
	DefaultSnapshotEvery = 256
	DefaultTrainAfter    = 512
	// reclusterNoiseFrac triggers the periodic re-cluster fallback: when
	// more than this fraction of assigned bursts land as noise, the frozen
	// model no longer describes the stream and is retrained in full.
	reclusterNoiseFrac = 0.3
)

// Header identifies the stream being analyzed — the same fields a PFT
// container header carries.
type Header struct {
	App      string
	NumRanks int
	Symbols  *callstack.SymbolTable
	Stacks   *callstack.Interner
}

// rankState is one rank's carry-over between chunks.
type rankState struct {
	// Validation state: per-stream time cursors, per-stream counter
	// monotonicity, nesting depths, record indices for error messages.
	evPrev, smpPrev sim.Time
	evLast, smpLast [counters.NumIDs]int64
	evSeen, smpSeen [counters.NumIDs]bool
	depthRegion     int
	depthComm       int
	evIdx, smpIdx   int
	dropped         bool  // lenient validation dropped the rank
	dropErr         error // why

	x          *trace.Extractor
	extractErr error // lenient extraction failure; rank contributes no bursts

	bursts []trace.Burst // completed bursts, stream order
	cursor int           // first burst still accepting samples
	clouds map[folding.BurstKey]*folding.BurstCloud

	pending       []trace.Sample // samples not yet attachable
	pendHead      int
	si            int // arrival index of the next sample to place (= batch FirstSmp base)
	lastEventTime sim.Time

	events, samples int
}

// Session is one incremental analysis in progress. Methods are safe for
// concurrent use, but records of one rank must be fed in stream order.
type Session struct {
	mu  sync.Mutex
	ctx context.Context
	opt Options
	hdr Header

	ranks  []rankState
	health *core.HealthObserver

	totalBursts int
	pendingTot  int
	pendingPeak int

	preDiags []core.Diagnostic // sanitize diagnostics from a FeedTrace repair

	assignor *cluster.Assignor
	assigned int // bursts labelled by the frozen model since (re)training
	noise    int // of which noise
	snap     *Snapshot
	snapAt   int

	finished bool
	failed   error
	report   *trace.SalvageReport
}

// New opens a session for the stream identified by hdr. The context governs
// the whole session: every Feed checks it, and Done runs the pipeline tail
// under it.
func New(ctx context.Context, hdr Header, opt Options) (*Session, error) {
	if hdr.NumRanks <= 0 {
		return nil, fmt.Errorf("stream: header declares %d ranks (%w)", hdr.NumRanks, trace.ErrNoRanks)
	}
	if opt.Window <= 0 {
		opt.Window = DefaultWindow
	}
	if opt.SnapshotEvery <= 0 {
		opt.SnapshotEvery = DefaultSnapshotEvery
	}
	if opt.TrainAfter <= 0 {
		opt.TrainAfter = DefaultTrainAfter
	}
	s := &Session{
		ctx:    ctx,
		opt:    opt,
		hdr:    hdr,
		ranks:  make([]rankState, hdr.NumRanks),
		health: core.NewHealthObserver(hdr.NumRanks),
	}
	bopt := trace.BurstOptions{MinDuration: opt.Core.MinBurstDuration}
	for r := range s.ranks {
		s.ranks[r].x = trace.NewExtractor(int32(r), bopt)
	}
	return s, nil
}

// Feed ingests one chunk. Records of a rank must arrive in stream order;
// chunks of different ranks may interleave arbitrarily. In strict mode the
// first invalid record fails the session; in lenient mode the offending
// rank is dropped exactly as batch prepare would drop an unrepairable rank,
// and the session continues.
func (s *Session) Feed(c trace.Chunk) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.feedLocked(c)
}

func (s *Session) feedLocked(c trace.Chunk) error {
	if s.finished {
		return ErrFinished
	}
	if s.failed != nil {
		return s.failed
	}
	if err := s.ctx.Err(); err != nil {
		return err
	}
	if c.Rank < 0 || c.Rank >= len(s.ranks) {
		return fmt.Errorf("stream: chunk for rank %d, session has %d ranks (%w)", c.Rank, len(s.ranks), trace.ErrInvalid)
	}
	rs := &s.ranks[c.Rank]
	if rs.dropped {
		return nil // batch cleared this rank; later records are void
	}
	for i := range c.Events {
		if err := s.feedEvent(rs, c.Rank, c.Events[i]); err != nil {
			return err
		}
		if rs.dropped {
			return nil
		}
	}
	// The chunk's events land before its samples, so every burst they close
	// is available by the time the samples arrive; attaching each sample as
	// it lands keeps the pending buffer at the true carry-over (samples of
	// the still-open burst) instead of a whole chunk.
	if rs.extractErr == nil {
		s.drainBursts(rs)
	}
	s.attach(rs)
	for i := range c.Samples {
		if err := s.feedSample(rs, c.Rank, c.Samples[i]); err != nil {
			return err
		}
		if rs.dropped {
			return nil
		}
		s.attach(rs)
	}
	return nil
}

// fail records a validation failure: strict mode makes it the session's
// sticky error; lenient mode drops the rank like batch prepare does.
func (s *Session) fail(rs *rankState, rank int, err error) error {
	if s.opt.Core.Strict {
		s.failed = fmt.Errorf("core: validating trace: %w", err)
		return s.failed
	}
	s.dropRank(rs, rank, err)
	return nil
}

// dropRank voids a rank mid-stream: its records leave every accumulator so
// the session's state matches a batch run whose prepare cleared the rank.
func (s *Session) dropRank(rs *rankState, rank int, err error) {
	rs.dropped = true
	rs.dropErr = err
	s.totalBursts -= len(rs.bursts)
	rs.bursts = nil
	rs.clouds = nil
	s.pendingTot -= len(rs.pending) - rs.pendHead
	rs.pending = nil
	rs.pendHead = 0
	rs.events, rs.samples = 0, 0
	s.health.Reset(rank)
}

func (s *Session) feedEvent(rs *rankState, rank int, e trace.Event) error {
	i := rs.evIdx
	rs.evIdx++
	// The per-record validation mirrors trace.ValidateRank field by field;
	// counter monotonicity is checked per stream rather than on the merged
	// event+sample timeline (the streams are consumed independently), a
	// deliberately weaker check that never rejects a trace the batch
	// validator accepts.
	switch {
	case e.Time < rs.evPrev:
		return s.fail(rs, rank, fmt.Errorf("%w: rank %d event %d out of order (%d after %d)", trace.ErrInvalid, rank, i, e.Time, rs.evPrev))
	case int(e.Rank) != rank:
		return s.fail(rs, rank, fmt.Errorf("%w: rank %d event %d carries rank %d", trace.ErrInvalid, rank, i, e.Rank))
	case !e.Type.Valid():
		return s.fail(rs, rank, fmt.Errorf("%w: rank %d event %d has invalid type %d", trace.ErrInvalid, rank, i, e.Type))
	}
	rs.evPrev = e.Time
	switch e.Type {
	case trace.RegionEnter:
		rs.depthRegion++
	case trace.RegionExit:
		rs.depthRegion--
		if rs.depthRegion < 0 {
			return s.fail(rs, rank, fmt.Errorf("%w: rank %d event %d: region exit without enter", trace.ErrInvalid, rank, i))
		}
	case trace.CommEnter:
		rs.depthComm++
	case trace.CommExit:
		rs.depthComm--
		if rs.depthComm < 0 {
			return s.fail(rs, rank, fmt.Errorf("%w: rank %d event %d: comm exit without enter", trace.ErrInvalid, rank, i))
		}
	}
	if err := monotone(&rs.evLast, &rs.evSeen, &e.Counters, rank, "event", i); err != nil {
		return s.fail(rs, rank, err)
	}
	s.health.Event(rank, e)
	rs.events++
	rs.lastEventTime = e.Time
	if rs.extractErr == nil {
		if err := rs.x.Push(e); err != nil {
			if s.opt.Core.Strict {
				s.failed = fmt.Errorf("core: extracting bursts: %w", err)
				return s.failed
			}
			rs.extractErr = err
			s.totalBursts -= len(rs.bursts)
			rs.bursts = nil
			rs.clouds = nil
		}
	}
	return nil
}

func (s *Session) feedSample(rs *rankState, rank int, smp trace.Sample) error {
	i := rs.smpIdx
	rs.smpIdx++
	switch {
	case smp.Time < rs.smpPrev:
		return s.fail(rs, rank, fmt.Errorf("%w: rank %d sample %d out of order", trace.ErrInvalid, rank, i))
	case int(smp.Rank) != rank:
		return s.fail(rs, rank, fmt.Errorf("%w: rank %d sample %d carries rank %d", trace.ErrInvalid, rank, i, smp.Rank))
	}
	if smp.Stack != callstack.NoStack {
		if _, ok := s.hdr.Stacks.Get(smp.Stack); !ok {
			return s.fail(rs, rank, fmt.Errorf("%w: rank %d sample %d references unknown stack %d", trace.ErrInvalid, rank, i, smp.Stack))
		}
	}
	rs.smpPrev = smp.Time
	if err := monotone(&rs.smpLast, &rs.smpSeen, &smp.Counters, rank, "sample", i); err != nil {
		return s.fail(rs, rank, err)
	}
	s.health.Sample(rank, smp)
	rs.samples++
	rs.pending = append(rs.pending, smp)
	s.pendingTot++
	if s.pendingTot > s.pendingPeak {
		s.pendingPeak = s.pendingTot
	}
	if s.pendingTot > s.opt.Window {
		s.failed = fmt.Errorf("%w: %d samples buffered, window allows %d", ErrWindow, s.pendingTot, s.opt.Window)
		return s.failed
	}
	return nil
}

// monotone is the per-stream half of trace.validateCounterMonotone.
func monotone(last *[counters.NumIDs]int64, seen *[counters.NumIDs]bool, set *counters.Set, rank int, what string, i int) error {
	for c := range set {
		v := set[c]
		if v == counters.Missing {
			continue
		}
		if v < 0 {
			return fmt.Errorf("%w: rank %d %s %d: counter %d negative (%d)", trace.ErrInvalid, rank, what, i, c, v)
		}
		if seen[c] && v < last[c] {
			return fmt.Errorf("%w: rank %d %s %d: counter %d regresses (%d after %d)", trace.ErrInvalid, rank, what, i, c, v, last[c])
		}
		last[c] = v
		seen[c] = true
	}
	return nil
}

// drainBursts moves the extractor's completed bursts into the rank's list,
// labelling them against the frozen model when one exists.
func (s *Session) drainBursts(rs *rankState) {
	for _, b := range rs.x.Drain() {
		if s.assignor != nil {
			b.Cluster = s.assignor.Assign(&b)
			s.assigned++
			if b.Cluster == cluster.Noise {
				s.noise++
			}
		}
		rs.bursts = append(rs.bursts, b)
		s.totalBursts++
	}
}

// attach replays the batch sample-linking algorithm incrementally: the head
// pending sample is placed against the first burst still accepting samples.
// Earlier than the burst: the sample can never attach (batch would have
// skipped it) — drop it, advancing the arrival index exactly as the batch
// skip loop advances its cursor. Inside: attach and project into the
// burst's cloud. At or past the end: the burst is final (streams are time-
// ordered, nothing earlier can arrive), move to the next burst. With no
// completed burst available the sample can still be dropped if it predates
// every burst the future can produce: the open burst's start when one is
// open, else the last event time.
func (s *Session) attach(rs *rankState) {
	for rs.pendHead < len(rs.pending) {
		smp := &rs.pending[rs.pendHead]
		if rs.cursor < len(rs.bursts) {
			b := &rs.bursts[rs.cursor]
			switch {
			case smp.Time < b.Start:
				rs.si++
				s.popPending(rs)
			case smp.Time < b.End:
				if b.NumSmp == 0 {
					b.FirstSmp = rs.si
				}
				b.NumSmp++
				s.observe(rs, b, smp)
				rs.si++
				s.popPending(rs)
			default:
				rs.cursor++ // burst final; retry the sample against the next
			}
			continue
		}
		horizon := rs.lastEventTime
		if t, open := rs.x.OpenStart(); open {
			horizon = t
		}
		if smp.Time >= horizon {
			return // may belong to a burst that has not closed yet
		}
		rs.si++
		s.popPending(rs)
	}
}

func (s *Session) popPending(rs *rankState) {
	rs.pendHead++
	s.pendingTot--
	// Compact once the dead prefix dominates, keeping the buffer bounded by
	// the live tail rather than the historical maximum.
	if rs.pendHead > 64 && rs.pendHead*2 > len(rs.pending) {
		n := copy(rs.pending, rs.pending[rs.pendHead:])
		rs.pending = rs.pending[:n]
		rs.pendHead = 0
	}
}

func (s *Session) observe(rs *rankState, b *trace.Burst, smp *trace.Sample) {
	if rs.extractErr != nil {
		return
	}
	if rs.clouds == nil {
		rs.clouds = make(map[folding.BurstKey]*folding.BurstCloud)
	}
	k := folding.KeyOf(b)
	c := rs.clouds[k]
	if c == nil {
		c = &folding.BurstCloud{}
		rs.clouds[k] = c
	}
	c.Observe(b, smp)
}

// BufferedRecords returns the records currently buffered (pending samples).
func (s *Session) BufferedRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pendingTot
}

// PeakBufferedRecords returns the high-water mark of buffered records — the
// figure the bounded-memory guarantee is about.
func (s *Session) PeakBufferedRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pendingPeak
}

// Bursts returns the computation bursts completed so far.
func (s *Session) Bursts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalBursts
}

// Consume drives the session from a chunk reader until end of stream — the
// path a service upload takes, decoding and analyzing while bytes arrive.
// The reader's salvage report (if salvaging) is retained for SalvageReport.
func (s *Session) Consume(cr *trace.ChunkReader, chunkLimit int) error {
	for {
		c, err := cr.Next(chunkLimit)
		if err == io.EOF {
			s.mu.Lock()
			s.report = cr.Report()
			s.mu.Unlock()
			return nil
		}
		if err != nil {
			return err
		}
		if err := s.Feed(c); err != nil {
			return err
		}
	}
}

// SalvageReport returns the chunk reader's salvage summary after a salvaging
// Consume reached end of stream, nil otherwise.
func (s *Session) SalvageReport() *trace.SalvageReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.report
}

// Done finishes the stream and runs the pipeline tail over everything the
// session accumulated. The model is byte-identical to batch Analyze over
// the same records. The session cannot be fed afterwards.
func (s *Session) Done() (*core.Model, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return nil, ErrFinished
	}
	if s.failed != nil {
		return nil, s.failed
	}
	s.finished = true
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	strict := s.opt.Core.Strict

	// End-of-stream validation: the unclosed-nesting checks ValidateRank
	// runs after its event scan, in its order (regions before comms).
	for r := range s.ranks {
		rs := &s.ranks[r]
		if rs.dropped {
			continue
		}
		var err error
		switch {
		case rs.depthRegion != 0:
			err = fmt.Errorf("%w: rank %d has %d unclosed regions", trace.ErrInvalid, r, rs.depthRegion)
		case rs.depthComm != 0:
			err = fmt.Errorf("%w: rank %d has %d unclosed comms", trace.ErrInvalid, r, rs.depthComm)
		default:
			continue
		}
		if strict {
			return nil, fmt.Errorf("core: validating trace: %w", err)
		}
		s.dropRank(rs, r, err)
	}

	// The static budget, from the accumulated counts (strict: the batch
	// checkBudget errors; lenient: the batch rank keep-prefix and diag).
	counts := core.StreamCounts{Events: make([]int, len(s.ranks)), Samples: make([]int, len(s.ranks))}
	for r := range s.ranks {
		counts.Events[r] = s.ranks[r].events
		counts.Samples[r] = s.ranks[r].samples
	}
	keep, budgetDiag, err := core.StreamBudget(counts, s.opt.Core.Budget, strict)
	if err != nil {
		return nil, err
	}

	// Finish extraction and settle the remaining samples.
	for r := 0; r < keep; r++ {
		rs := &s.ranks[r]
		if rs.dropped || rs.extractErr != nil {
			continue
		}
		if err := rs.x.Finish(); err != nil {
			if strict {
				return nil, fmt.Errorf("core: extracting bursts: %w", err)
			}
			rs.extractErr = err
			s.totalBursts -= len(rs.bursts)
			rs.bursts = nil
			rs.clouds = nil
			continue
		}
		s.drainBursts(rs)
		s.attach(rs)
		// Anything still pending falls past the last burst: batch would
		// never attach it either.
		s.pendingTot -= len(rs.pending) - rs.pendHead
		rs.pending = nil
		rs.pendHead = 0
	}

	// Assemble the prior diagnostics in batch stage order: sanitize,
	// validation drops, health, budget, extraction.
	rec := core.NewRecorder(s.ctx)
	for _, d := range s.preDiags {
		rec.Add(d)
	}
	for r := range s.ranks {
		if rs := &s.ranks[r]; rs.dropped {
			rec.Addf("validate", core.KindRankDropped, core.SeverityError, r, -1, "rank unrepairable, dropped: %v", rs.dropErr)
		}
	}
	s.health.Report(rec)
	if budgetDiag != nil {
		rec.Add(*budgetDiag)
	}
	for r := 0; r < keep; r++ {
		if rs := &s.ranks[r]; !rs.dropped && rs.extractErr != nil {
			rec.Addf("extract", core.KindExtractFailed, core.SeverityError, r, -1, "burst extraction failed, rank dropped: %v", rs.extractErr)
		}
	}

	var bursts []trace.Burst
	clouds := make(map[folding.BurstKey]*folding.BurstCloud)
	for r := 0; r < keep; r++ {
		rs := &s.ranks[r]
		if rs.dropped || rs.extractErr != nil {
			continue
		}
		bursts = append(bursts, rs.bursts...)
		for k, c := range rs.clouds {
			clouds[k] = c
		}
	}

	return core.AnalyzeBursts(s.ctx, core.BurstsInput{
		App:      s.hdr.App,
		NumRanks: keep,
		Symbols:  s.hdr.Symbols,
		Stacks:   s.hdr.Stacks,
		Bursts:   bursts,
		Project:  folding.CloudProjector(clouds),
		Prior:    rec.Diagnostics(),
	}, s.opt.Core)
}
