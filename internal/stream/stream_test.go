package stream

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"phasefold/internal/callstack"
	"phasefold/internal/core"
	"phasefold/internal/faults"
	"phasefold/internal/sim"
	"phasefold/internal/simapp"
	"phasefold/internal/trace"
)

// genTrace runs a simulated workload and returns its trace.
func genTrace(t *testing.T, name string, iters int, seed uint64) *trace.Trace {
	t.Helper()
	app, err := simapp.NewApp(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := simapp.Config{Ranks: 4, Iterations: iters, Seed: seed, FreqGHz: 2}
	run, err := core.RunApp(app, cfg, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return run.Trace
}

// sessionFor opens a session bound to tr's header.
func sessionFor(t *testing.T, ctx context.Context, tr *trace.Trace, opt Options) *Session {
	t.Helper()
	s, err := New(ctx, Header{App: tr.AppName, NumRanks: tr.NumRanks(), Symbols: tr.Symbols, Stacks: tr.Stacks}, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// mustEqualModels asserts the streamed model is byte-identical to the batch
// one — reflect.DeepEqual over the full model graph.
func mustEqualModels(t *testing.T, batch, streamed *core.Model) {
	t.Helper()
	if !reflect.DeepEqual(batch, streamed) {
		t.Fatalf("streamed model differs from batch:\nbatch:    %+v\nstreamed: %+v", batch, streamed)
	}
}

func TestFeedTraceMatchesBatch(t *testing.T) {
	tr := genTrace(t, "multiphase", 200, 42)
	opt := core.DefaultOptions()
	batch, err := core.Analyze(context.Background(), tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	s := sessionFor(t, context.Background(), tr, Options{Core: opt})
	if err := s.FeedTrace(tr); err != nil {
		t.Fatal(err)
	}
	streamed, err := s.Done()
	if err != nil {
		t.Fatal(err)
	}
	mustEqualModels(t, batch, streamed)
}

func TestConsumeMatchesBatch(t *testing.T) {
	tr := genTrace(t, "cg", 150, 11)
	var buf bytes.Buffer
	if err := trace.Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	// The batch reference consumes the same bytes the session does: the
	// container codec canonicalizes the stack table (duplicate-content
	// stacks collapse to one ID), so the byte-identity contract is between
	// the two consumers of a stream, not across an encode round-trip.
	dec, _, err := trace.Decode(context.Background(), bytes.NewReader(buf.Bytes()), trace.DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := core.Analyze(context.Background(), dec, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int{1, 64, 1 << 20} {
		cr, err := trace.NewChunkReader(context.Background(), bytes.NewReader(buf.Bytes()), trace.DecodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(context.Background(), Header{App: cr.App(), NumRanks: cr.NumRanks(), Symbols: cr.Symbols(), Stacks: cr.Stacks()}, Options{Core: opt})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Consume(cr, limit); err != nil {
			t.Fatal(err)
		}
		streamed, err := s.Done()
		if err != nil {
			t.Fatal(err)
		}
		mustEqualModels(t, batch, streamed)
	}
}

func TestFeedTraceFaultedMatchesBatch(t *testing.T) {
	// Trace-level faults drive the trace through sanitize and rank-drop
	// repair; FeedTrace must replay the exact batch repair path.
	for _, spec := range []string{"wrap=40", "dup=0.05", "zero=0.02", "drop=0.2,skew=50us"} {
		tr := genTrace(t, "multiphase", 150, 7)
		chain, err := faults.Parse(spec, 99)
		if err != nil {
			t.Fatal(err)
		}
		chain.ApplyTrace(tr)
		opt := core.DefaultOptions()
		batch, err := core.Analyze(context.Background(), tr, opt)
		if err != nil {
			t.Fatalf("%s: batch: %v", spec, err)
		}
		s := sessionFor(t, context.Background(), tr, Options{Core: opt})
		if err := s.FeedTrace(tr); err != nil {
			t.Fatalf("%s: feed: %v", spec, err)
		}
		streamed, err := s.Done()
		if err != nil {
			t.Fatalf("%s: done: %v", spec, err)
		}
		mustEqualModels(t, batch, streamed)
	}
}

func TestSnapshotsDoNotPerturbResult(t *testing.T) {
	tr := genTrace(t, "multiphase", 200, 42)
	opt := core.DefaultOptions()
	batch, err := core.Analyze(context.Background(), tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	s := sessionFor(t, context.Background(), tr, Options{Core: opt, TrainAfter: 64, SnapshotEvery: 32})
	// Feed rank by rank, snapshotting between feeds so provisional labels
	// are written mid-stream.
	var lastSnap *Snapshot
	for r := 0; r < tr.NumRanks(); r++ {
		rd := tr.Ranks[r]
		if err := s.Feed(trace.Chunk{Rank: r, Events: rd.Events, Samples: rd.Samples}); err != nil {
			t.Fatal(err)
		}
		lastSnap = s.Snapshot()
	}
	if lastSnap == nil || !lastSnap.Trained {
		t.Fatalf("expected a trained snapshot, got %+v", lastSnap)
	}
	if lastSnap.Clusters == 0 || len(lastSnap.States) == 0 {
		t.Fatalf("snapshot carries no provisional clusters: %+v", lastSnap)
	}
	streamed, err := s.Done()
	if err != nil {
		t.Fatal(err)
	}
	mustEqualModels(t, batch, streamed)
}

func TestWindowBound(t *testing.T) {
	s, err := New(context.Background(), Header{App: "x", NumRanks: 1}, Options{Core: core.DefaultOptions(), Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Samples with no burst to attach to pend; exceeding the window fails.
	var smps []trace.Sample
	for i := 0; i < 8; i++ {
		smps = append(smps, trace.Sample{Time: sim.Time(1000 + 10*i), Stack: callstack.NoStack})
	}
	err = s.Feed(trace.Chunk{Rank: 0, Samples: smps})
	if !errors.Is(err, ErrWindow) {
		t.Fatalf("got %v, want ErrWindow", err)
	}
	if s.PeakBufferedRecords() <= 4 {
		t.Fatalf("peak %d, want > window", s.PeakBufferedRecords())
	}
}

func TestSessionCancellation(t *testing.T) {
	tr := genTrace(t, "multiphase", 50, 3)
	ctx, cancel := context.WithCancel(context.Background())
	s := sessionFor(t, ctx, tr, Options{Core: core.DefaultOptions()})
	cancel()
	if err := s.Feed(trace.Chunk{Rank: 0, Events: tr.Ranks[0].Events}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Feed after cancel: got %v", err)
	}
}
