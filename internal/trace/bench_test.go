package trace

import (
	"bytes"
	"context"
	"testing"
)

func benchTrace(b *testing.B) *Trace {
	t := &testing.T{}
	tr := randomTrace(t, 1, 4, 200)
	if t.Failed() {
		b.Fatal("fixture construction failed")
	}
	return tr
}

func BenchmarkEncodeBinary(b *testing.B) {
	tr := benchTrace(b)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Encode(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkDecodeBinary(b *testing.B) {
	tr := benchTrace(b)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(context.Background(), bytes.NewReader(raw), DecodeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtractBursts(b *testing.B) {
	tr := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExtractBursts(tr, BurstOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
