package trace

import (
	"fmt"
	"sort"

	"phasefold/internal/sim"
)

// BurstOptions controls computation-burst extraction.
type BurstOptions struct {
	// MinDuration drops bursts shorter than this; tiny slivers between
	// back-to-back communications carry no analyzable signal and only add
	// clustering noise. Zero keeps everything.
	MinDuration sim.Duration
	// RequireRegion keeps only bursts executed inside an instrumented
	// region, discarding glue code between communication calls.
	RequireRegion bool
}

// ExtractBursts derives computation bursts from the event streams of t: the
// maximal intervals during which a rank executes user code (no open
// communication), labelled with the innermost instrumented region and the
// iteration they belong to. Bursts inherit counter deltas from the probe
// snapshots at their boundaries, and are linked to the samples that fall
// inside them.
//
// The extraction insists on well-formed streams (Validate's invariants); a
// malformed stream returns an error rather than silently mis-paired bursts.
func ExtractBursts(t *Trace, opt BurstOptions) ([]Burst, error) {
	var all []Burst
	for _, rd := range t.Ranks {
		bursts, err := ExtractRankBursts(rd, opt)
		if err != nil {
			return nil, err
		}
		all = append(all, bursts...)
	}
	return all, nil
}

// ExtractRankBursts derives the computation bursts of a single rank — the
// per-process unit of ExtractBursts, exposed so degraded-mode analysis can
// isolate a malformed rank instead of rejecting the whole trace.
func ExtractRankBursts(rd *RankData, opt BurstOptions) ([]Burst, error) {
	if rd == nil {
		return nil, fmt.Errorf("%w: nil rank", ErrInvalid)
	}
	bursts, err := extractRank(rd, opt)
	if err != nil {
		return nil, err
	}
	attachSamples(bursts, rd.Samples)
	return bursts, nil
}

type openBurst struct {
	start   sim.Time
	ctr     Event // probe snapshot at burst start
	active  bool
	region  int64
	iterNum int64
}

// Extractor derives computation bursts from one rank's event stream
// incrementally: Push events in time order as they arrive, Drain completed
// bursts whenever convenient, and Finish at end of stream. The batch path
// (ExtractRankBursts) drives the same state machine over a whole stream in
// one shot, so a chunked feed yields bit-identical bursts to a batch
// extraction at any chunking.
type Extractor struct {
	rank      int32
	opt       BurstOptions
	bursts    []Burst
	open      openBurst
	regions   []int64 // stack of active region ids
	commDepth int
	iterNum   int64
	idx       int // events pushed so far (error-message event index)
	err       error
}

// NewExtractor returns an extractor for one rank's stream.
func NewExtractor(rank int32, opt BurstOptions) *Extractor {
	return &Extractor{rank: rank, opt: opt, iterNum: -1}
}

func (x *Extractor) begin(e Event) {
	region := int64(-1)
	if n := len(x.regions); n > 0 {
		region = x.regions[n-1]
	}
	x.open = openBurst{start: e.Time, ctr: e, active: true, region: region, iterNum: x.iterNum}
}

func (x *Extractor) end(e Event) {
	if !x.open.active {
		return
	}
	x.open.active = false
	if x.opt.RequireRegion && x.open.region < 0 {
		return
	}
	dur := e.Time - x.open.start
	if dur <= 0 || dur < x.opt.MinDuration {
		return
	}
	x.bursts = append(x.bursts, Burst{
		Rank:     x.rank,
		Region:   x.open.region,
		Start:    x.open.start,
		End:      e.Time,
		Iter:     x.open.iterNum,
		StartCtr: x.open.ctr.Counters,
		Delta:    e.Counters.Sub(x.open.ctr.Counters),
		Group:    e.Group,
		Cluster:  ClusterNone,
		FirstSmp: -1,
	})
}

// Push feeds the next event of the stream. A malformed stream (unbalanced
// region or communication nesting) returns an error; the error is sticky and
// subsequent pushes return it unchanged.
func (x *Extractor) Push(e Event) error {
	if x.err != nil {
		return x.err
	}
	i := x.idx
	x.idx++
	switch e.Type {
	case IterBegin:
		x.iterNum = e.Value
		if x.commDepth == 0 {
			x.end(e)
			x.begin(e)
		}
	case IterEnd:
		if x.commDepth == 0 {
			x.end(e)
		}
	case RegionEnter:
		if x.commDepth == 0 {
			x.end(e) // close the burst outside the region, if any
		}
		x.regions = append(x.regions, e.Value)
		if x.commDepth == 0 {
			x.begin(e)
		}
	case RegionExit:
		if len(x.regions) == 0 {
			x.err = fmt.Errorf("trace: rank %d event %d: region exit without enter", x.rank, i)
			return x.err
		}
		if x.regions[len(x.regions)-1] != e.Value {
			x.err = fmt.Errorf("trace: rank %d event %d: region exit %d does not match open region %d",
				x.rank, i, e.Value, x.regions[len(x.regions)-1])
			return x.err
		}
		x.regions = x.regions[:len(x.regions)-1]
		if x.commDepth == 0 {
			x.end(e)
			x.begin(e)
		}
	case CommEnter:
		if x.commDepth == 0 {
			x.end(e)
		}
		x.commDepth++
	case CommExit:
		x.commDepth--
		if x.commDepth < 0 {
			x.err = fmt.Errorf("trace: rank %d event %d: comm exit without enter", x.rank, i)
			return x.err
		}
		if x.commDepth == 0 {
			x.begin(e)
		}
	}
	return nil
}

// OpenStart returns the start time of the currently open burst; ok is false
// when no burst is open. The streaming sample linker uses it as the horizon
// below which a pending sample can no longer belong to any future burst.
func (x *Extractor) OpenStart() (sim.Time, bool) {
	return x.open.start, x.open.active
}

// Drain returns the bursts completed since the last Drain, in start order.
// The returned slice is owned by the caller.
func (x *Extractor) Drain() []Burst {
	out := x.bursts
	x.bursts = nil
	return out
}

// Finish checks the end-of-stream invariants (no open communications or
// regions). Any final open burst has no closing probe and is discarded, as
// in batch extraction.
func (x *Extractor) Finish() error {
	if x.err != nil {
		return x.err
	}
	if x.commDepth != 0 {
		x.err = fmt.Errorf("trace: rank %d ends with %d open communications", x.rank, x.commDepth)
		return x.err
	}
	if len(x.regions) != 0 {
		x.err = fmt.Errorf("trace: rank %d ends with %d open regions", x.rank, len(x.regions))
		return x.err
	}
	return nil
}

func extractRank(rd *RankData, opt BurstOptions) ([]Burst, error) {
	x := NewExtractor(rd.Rank, opt)
	for _, e := range rd.Events {
		if err := x.Push(e); err != nil {
			return nil, err
		}
	}
	if err := x.Finish(); err != nil {
		return nil, err
	}
	return x.Drain(), nil
}

// attachSamples links each burst to the contiguous run of samples whose
// timestamps fall inside it. Both inputs are time-sorted.
func attachSamples(bursts []Burst, samples []Sample) {
	si := 0
	for bi := range bursts {
		b := &bursts[bi]
		for si < len(samples) && samples[si].Time < b.Start {
			si++
		}
		first := si
		for si < len(samples) && samples[si].Time < b.End {
			si++
		}
		if si > first {
			b.FirstSmp = first
			b.NumSmp = si - first
		}
	}
}

// SortBursts orders bursts by (rank, start time), the canonical order the
// clustering and folding stages expect.
func SortBursts(bursts []Burst) {
	sort.Slice(bursts, func(i, j int) bool {
		if bursts[i].Rank != bursts[j].Rank {
			return bursts[i].Rank < bursts[j].Rank
		}
		return bursts[i].Start < bursts[j].Start
	})
}

// BurstsByRegion groups burst indices by their region id, with deterministic
// iteration order left to the caller via sorted keys.
func BurstsByRegion(bursts []Burst) map[int64][]int {
	out := make(map[int64][]int)
	for i, b := range bursts {
		out[b.Region] = append(out[b.Region], i)
	}
	return out
}

// TotalComputation sums the durations of all bursts, a denominator used by
// coverage statistics in reports.
func TotalComputation(bursts []Burst) sim.Duration {
	var total sim.Duration
	for _, b := range bursts {
		total += b.Duration()
	}
	return total
}
