package trace

import (
	"fmt"
	"sort"

	"phasefold/internal/sim"
)

// BurstOptions controls computation-burst extraction.
type BurstOptions struct {
	// MinDuration drops bursts shorter than this; tiny slivers between
	// back-to-back communications carry no analyzable signal and only add
	// clustering noise. Zero keeps everything.
	MinDuration sim.Duration
	// RequireRegion keeps only bursts executed inside an instrumented
	// region, discarding glue code between communication calls.
	RequireRegion bool
}

// ExtractBursts derives computation bursts from the event streams of t: the
// maximal intervals during which a rank executes user code (no open
// communication), labelled with the innermost instrumented region and the
// iteration they belong to. Bursts inherit counter deltas from the probe
// snapshots at their boundaries, and are linked to the samples that fall
// inside them.
//
// The extraction insists on well-formed streams (Validate's invariants); a
// malformed stream returns an error rather than silently mis-paired bursts.
func ExtractBursts(t *Trace, opt BurstOptions) ([]Burst, error) {
	var all []Burst
	for _, rd := range t.Ranks {
		bursts, err := ExtractRankBursts(rd, opt)
		if err != nil {
			return nil, err
		}
		all = append(all, bursts...)
	}
	return all, nil
}

// ExtractRankBursts derives the computation bursts of a single rank — the
// per-process unit of ExtractBursts, exposed so degraded-mode analysis can
// isolate a malformed rank instead of rejecting the whole trace.
func ExtractRankBursts(rd *RankData, opt BurstOptions) ([]Burst, error) {
	if rd == nil {
		return nil, fmt.Errorf("%w: nil rank", ErrInvalid)
	}
	bursts, err := extractRank(rd, opt)
	if err != nil {
		return nil, err
	}
	attachSamples(bursts, rd.Samples)
	return bursts, nil
}

type openBurst struct {
	start   sim.Time
	ctr     Event // probe snapshot at burst start
	active  bool
	region  int64
	iterNum int64
}

func extractRank(rd *RankData, opt BurstOptions) ([]Burst, error) {
	var (
		bursts    []Burst
		open      openBurst
		regions   []int64 // stack of active region ids
		commDepth int
		iterNum   int64 = -1
	)
	begin := func(e Event) {
		region := int64(-1)
		if n := len(regions); n > 0 {
			region = regions[n-1]
		}
		open = openBurst{start: e.Time, ctr: e, active: true, region: region, iterNum: iterNum}
	}
	end := func(e Event) {
		if !open.active {
			return
		}
		open.active = false
		if opt.RequireRegion && open.region < 0 {
			return
		}
		dur := e.Time - open.start
		if dur <= 0 || dur < opt.MinDuration {
			return
		}
		bursts = append(bursts, Burst{
			Rank:     rd.Rank,
			Region:   open.region,
			Start:    open.start,
			End:      e.Time,
			Iter:     open.iterNum,
			StartCtr: open.ctr.Counters,
			Delta:    e.Counters.Sub(open.ctr.Counters),
			Group:    e.Group,
			Cluster:  ClusterNone,
			FirstSmp: -1,
		})
	}
	for i, e := range rd.Events {
		switch e.Type {
		case IterBegin:
			iterNum = e.Value
			if commDepth == 0 {
				end(e)
				begin(e)
			}
		case IterEnd:
			if commDepth == 0 {
				end(e)
			}
		case RegionEnter:
			if commDepth == 0 {
				end(e) // close the burst outside the region, if any
			}
			regions = append(regions, e.Value)
			if commDepth == 0 {
				begin(e)
			}
		case RegionExit:
			if len(regions) == 0 {
				return nil, fmt.Errorf("trace: rank %d event %d: region exit without enter", rd.Rank, i)
			}
			if regions[len(regions)-1] != e.Value {
				return nil, fmt.Errorf("trace: rank %d event %d: region exit %d does not match open region %d",
					rd.Rank, i, e.Value, regions[len(regions)-1])
			}
			regions = regions[:len(regions)-1]
			if commDepth == 0 {
				end(e)
				begin(e)
			}
		case CommEnter:
			if commDepth == 0 {
				end(e)
			}
			commDepth++
		case CommExit:
			commDepth--
			if commDepth < 0 {
				return nil, fmt.Errorf("trace: rank %d event %d: comm exit without enter", rd.Rank, i)
			}
			if commDepth == 0 {
				begin(e)
			}
		}
	}
	if commDepth != 0 {
		return nil, fmt.Errorf("trace: rank %d ends with %d open communications", rd.Rank, commDepth)
	}
	if len(regions) != 0 {
		return nil, fmt.Errorf("trace: rank %d ends with %d open regions", rd.Rank, len(regions))
	}
	return bursts, nil
}

// attachSamples links each burst to the contiguous run of samples whose
// timestamps fall inside it. Both inputs are time-sorted.
func attachSamples(bursts []Burst, samples []Sample) {
	si := 0
	for bi := range bursts {
		b := &bursts[bi]
		for si < len(samples) && samples[si].Time < b.Start {
			si++
		}
		first := si
		for si < len(samples) && samples[si].Time < b.End {
			si++
		}
		if si > first {
			b.FirstSmp = first
			b.NumSmp = si - first
		}
	}
}

// SortBursts orders bursts by (rank, start time), the canonical order the
// clustering and folding stages expect.
func SortBursts(bursts []Burst) {
	sort.Slice(bursts, func(i, j int) bool {
		if bursts[i].Rank != bursts[j].Rank {
			return bursts[i].Rank < bursts[j].Rank
		}
		return bursts[i].Start < bursts[j].Start
	})
}

// BurstsByRegion groups burst indices by their region id, with deterministic
// iteration order left to the caller via sorted keys.
func BurstsByRegion(bursts []Burst) map[int64][]int {
	out := make(map[int64][]int)
	for i, b := range bursts {
		out[b.Region] = append(out[b.Region], i)
	}
	return out
}

// TotalComputation sums the durations of all bursts, a denominator used by
// coverage statistics in reports.
func TotalComputation(bursts []Burst) sim.Duration {
	var total sim.Duration
	for _, b := range bursts {
		total += b.Duration()
	}
	return total
}
