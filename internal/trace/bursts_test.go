package trace

import (
	"testing"

	"phasefold/internal/counters"
	"phasefold/internal/sim"
)

// script builds a single-rank event stream from (time, type, value) triples
// with a linear instruction counter (1 instruction per ns).
func script(t *testing.T, steps ...[3]int64) *Trace {
	t.Helper()
	tr := New("script", 1, nil, nil)
	for _, s := range steps {
		tr.AddEvent(Event{
			Time:     sim.Time(s[0]),
			Type:     EventType(s[1]),
			Value:    s[2],
			Counters: ctrAt(s[0]),
		})
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("script trace invalid: %v", err)
	}
	return tr
}

func ev(at int64, typ EventType, val int64) [3]int64 { return [3]int64{at, int64(typ), val} }

func TestExtractSimpleRegionBurst(t *testing.T) {
	tr := script(t,
		ev(0, IterBegin, 0),
		ev(10, RegionEnter, 7),
		ev(110, RegionExit, 7),
		ev(200, IterEnd, 0),
	)
	bursts, err := ExtractBursts(tr, BurstOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Three bursts: [0,10) outside region, [10,110) region 7, [110,200) after.
	if len(bursts) != 3 {
		t.Fatalf("got %d bursts, want 3: %+v", len(bursts), bursts)
	}
	b := bursts[1]
	if b.Region != 7 || b.Start != 10 || b.End != 110 || b.Iter != 0 {
		t.Fatalf("region burst = %+v", b)
	}
	if ins, ok := b.Delta.Get(counters.Instructions); !ok || ins != 100 {
		t.Fatalf("region burst instructions = %d", ins)
	}
	if v, ok := b.StartCtr.Get(counters.Instructions); !ok || v != 10 {
		t.Fatalf("region burst start counter = %d", v)
	}
}

func TestExtractRequireRegion(t *testing.T) {
	tr := script(t,
		ev(0, IterBegin, 0),
		ev(10, RegionEnter, 7),
		ev(110, RegionExit, 7),
		ev(200, IterEnd, 0),
	)
	bursts, err := ExtractBursts(tr, BurstOptions{RequireRegion: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(bursts) != 1 || bursts[0].Region != 7 {
		t.Fatalf("RequireRegion kept %+v", bursts)
	}
}

func TestExtractCommSplitsBursts(t *testing.T) {
	tr := script(t,
		ev(0, IterBegin, 0),
		ev(100, CommEnter, 3),
		ev(150, CommExit, 3),
		ev(300, IterEnd, 0),
	)
	bursts, err := ExtractBursts(tr, BurstOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bursts) != 2 {
		t.Fatalf("got %d bursts, want 2", len(bursts))
	}
	if bursts[0].Start != 0 || bursts[0].End != 100 {
		t.Fatalf("pre-comm burst = %+v", bursts[0])
	}
	if bursts[1].Start != 150 || bursts[1].End != 300 {
		t.Fatalf("post-comm burst = %+v", bursts[1])
	}
}

func TestExtractNestedCommOnlyOuterDelimits(t *testing.T) {
	tr := script(t,
		ev(0, IterBegin, 0),
		ev(50, CommEnter, -1),
		ev(60, CommEnter, -1), // nested (e.g. collective implemented over p2p)
		ev(70, CommExit, -1),
		ev(90, CommExit, -1),
		ev(200, IterEnd, 0),
	)
	bursts, err := ExtractBursts(tr, BurstOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bursts) != 2 {
		t.Fatalf("got %d bursts, want 2 (nested comm must not open a burst)", len(bursts))
	}
	if bursts[1].Start != 90 {
		t.Fatalf("burst after nested comm starts at %d, want 90", bursts[1].Start)
	}
}

func TestExtractRegionInsideCommIgnored(t *testing.T) {
	// Region markers fired while inside communication (progress callbacks)
	// must not create bursts.
	tr := script(t,
		ev(0, IterBegin, 0),
		ev(10, CommEnter, -1),
		ev(20, RegionEnter, 9),
		ev(30, RegionExit, 9),
		ev(40, CommExit, -1),
		ev(100, IterEnd, 0),
	)
	bursts, err := ExtractBursts(tr, BurstOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bursts {
		if b.Region == 9 {
			t.Fatalf("burst created for region inside comm: %+v", b)
		}
	}
}

func TestExtractMinDuration(t *testing.T) {
	tr := script(t,
		ev(0, IterBegin, 0),
		ev(5, CommEnter, -1), // 5 ns sliver
		ev(10, CommExit, -1),
		ev(1000, IterEnd, 0),
	)
	bursts, err := ExtractBursts(tr, BurstOptions{MinDuration: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(bursts) != 1 {
		t.Fatalf("got %d bursts, want 1 (sliver dropped)", len(bursts))
	}
	if bursts[0].Duration() != 990 {
		t.Fatalf("kept burst duration %d", bursts[0].Duration())
	}
}

func TestExtractIterationNumbers(t *testing.T) {
	tr := script(t,
		ev(0, IterBegin, 0),
		ev(100, IterEnd, 0),
		ev(110, IterBegin, 1),
		ev(210, IterEnd, 1),
	)
	bursts, err := ExtractBursts(tr, BurstOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bursts) != 2 || bursts[0].Iter != 0 || bursts[1].Iter != 1 {
		t.Fatalf("iteration numbers wrong: %+v", bursts)
	}
}

func TestExtractMismatchedRegionExit(t *testing.T) {
	tr := New("bad", 1, nil, nil)
	tr.AddEvent(Event{Time: 1, Type: RegionEnter, Value: 1, Counters: counters.AllMissing()})
	tr.AddEvent(Event{Time: 2, Type: RegionExit, Value: 2, Counters: counters.AllMissing()})
	if _, err := ExtractBursts(tr, BurstOptions{}); err == nil {
		t.Fatal("mismatched region exit not rejected")
	}
}

func TestExtractAttachesSamples(t *testing.T) {
	tr := script(t,
		ev(0, IterBegin, 0),
		ev(10, RegionEnter, 1),
		ev(110, RegionExit, 1),
		ev(120, IterEnd, 0),
	)
	for _, at := range []sim.Time{5, 20, 60, 115} {
		tr.AddSample(Sample{Time: at, Counters: ctrAt(int64(at)), Stack: -1})
	}
	bursts, err := ExtractBursts(tr, BurstOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var region *Burst
	for i := range bursts {
		if bursts[i].Region == 1 {
			region = &bursts[i]
		}
	}
	if region == nil {
		t.Fatal("region burst missing")
	}
	if region.FirstSmp != 1 || region.NumSmp != 2 {
		t.Fatalf("sample attachment = (%d, %d), want (1, 2)", region.FirstSmp, region.NumSmp)
	}
}

func TestSortBursts(t *testing.T) {
	bursts := []Burst{
		{Rank: 1, Start: 5},
		{Rank: 0, Start: 9},
		{Rank: 0, Start: 2},
	}
	SortBursts(bursts)
	if bursts[0].Rank != 0 || bursts[0].Start != 2 || bursts[2].Rank != 1 {
		t.Fatalf("SortBursts order wrong: %+v", bursts)
	}
}

func TestBurstsByRegionAndTotals(t *testing.T) {
	bursts := []Burst{
		{Region: 1, Start: 0, End: 10},
		{Region: 2, Start: 0, End: 5},
		{Region: 1, Start: 20, End: 40},
	}
	byRegion := BurstsByRegion(bursts)
	if len(byRegion[1]) != 2 || len(byRegion[2]) != 1 {
		t.Fatalf("BurstsByRegion = %v", byRegion)
	}
	if got := TotalComputation(bursts); got != 35 {
		t.Fatalf("TotalComputation = %d, want 35", got)
	}
}

func TestBurstContains(t *testing.T) {
	b := Burst{Start: 10, End: 20}
	if !b.Contains(10) || b.Contains(20) || b.Contains(9) {
		t.Fatal("Contains boundary semantics wrong (inclusive start, exclusive end)")
	}
}
