package trace

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"phasefold/internal/counters"
)

// bigEncodedTrace encodes a trace large enough that a full decode takes well
// over the cancellation deadline used below.
func bigEncodedTrace(tb testing.TB) []byte {
	tb.Helper()
	tr := fuzzSeedTrace(tb)
	base := tr.Ranks[0]
	for i := 0; i < 200000; i++ {
		ctr := counters.AllMissing()
		ctr[counters.Instructions] = int64(100 + i)
		tr.AddSample(Sample{Time: 25, Rank: 0, Counters: ctr, Stack: base.Samples[0].Stack})
	}
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func TestDecodeCancelsPromptly(t *testing.T) {
	data := bigEncodedTrace(t)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, _, err := Decode(ctx, bytes.NewReader(data), DecodeOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled decode returned %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("cancellation took %v, want under 100ms", d)
	}

	// Mid-flight: cancel while the decoder is in its record loop.
	ctx, cancel = context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := Decode(ctx, bytes.NewReader(data), DecodeOptions{})
		done <- err
	}()
	cancel()
	start = time.Now()
	select {
	case err := <-done:
		// The decode may have raced to completion before the cancel landed;
		// what it must never do is return some third, undefined state.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-flight cancel returned %v, want context.Canceled or nil", err)
		}
		if d := time.Since(start); d > 100*time.Millisecond {
			t.Errorf("mid-flight cancellation took %v after cancel, want under 100ms", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("decode ignored cancellation")
	}
}

func TestDecodeSalvageNeverAbsorbsCancellation(t *testing.T) {
	data := bigEncodedTrace(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Decode(ctx, bytes.NewReader(data), DecodeOptions{Salvage: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("salvage decode turned cancellation into %v, want context.Canceled", err)
	}
}

func TestDecodeTextCancels(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeText(&buf, fuzzSeedTrace(t)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := DecodeText(ctx, bytes.NewReader(buf.Bytes()), DecodeOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled text decode returned %v, want context.Canceled", err)
	}
}

func TestDecodeDeadlinePropagates(t *testing.T) {
	data := bigEncodedTrace(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, _, err := Decode(ctx, bytes.NewReader(data), DecodeOptions{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired decode returned %v, want context.DeadlineExceeded", err)
	}
}
