package trace

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"

	"phasefold/internal/callstack"
	"phasefold/internal/sim"
)

// Chunk is a batch of decoded records from a single rank, in stream order.
// The streaming session consumes chunks; a chunk never spans ranks, so the
// per-rank time order the analysis depends on is preserved by construction.
type Chunk struct {
	Rank    int
	Events  []Event
	Samples []Sample
}

// Records returns the record count of the chunk.
func (c *Chunk) Records() int { return len(c.Events) + len(c.Samples) }

// ChunkReader decodes a binary trace stream ("PFT2" or legacy "PFT1")
// incrementally: the header (app name, symbol and stack tables, rank count)
// is decoded eagerly by NewChunkReader, and Next then yields bounded record
// chunks without ever materializing a whole rank section as records. Only
// the current section's undecoded bytes are buffered, so memory stays
// bounded by the chunk limit plus the codec's I/O buffers — this is the
// reader behind Stream sessions analyzing traces larger than memory.
//
// The records produced are bit-identical to Decode's: both paths share the
// per-record decoders. Salvage mode keeps every record decoded before a
// damage point; in the sectioned "PFT2" container a damaged section is
// skipped via its length prefix and later ranks still decode, matching the
// batch decoder's per-section isolation. Unlike Decode, salvage here does
// NOT run Sanitize over the recovered records (there is no resident trace
// to repair); the streaming session's own per-rank validation takes that
// role. Header damage is never salvageable.
type ChunkReader struct {
	ctx      context.Context
	opt      DecodeOptions
	outer    *bufio.Reader
	app      string
	syms     *callstack.SymbolTable
	stacks   *callstack.Interner
	stackIDs []callstack.StackID
	nRanks   int

	sectioned bool
	section   *io.LimitedReader
	secBuf    *bufio.Reader
	rr        *reader // record-level reader for the current source

	rank    int // current rank being decoded; nRanks when exhausted
	started bool
	phase   int // 0 = section start, 1 = events, 2 = samples
	left    int // records left in the current phase
	prev    sim.Time

	events, samples int
	emitted         []bool // per rank: any records yielded
	dangling        int
	damage          error // first suppressed damage (salvage mode)
	done            bool
}

// NewChunkReader reads the stream header from r and returns a reader
// positioned at the first rank's records. Errors wrap the package sentinels
// exactly as Decode's do.
func NewChunkReader(ctx context.Context, rd io.Reader, opt DecodeOptions) (*ChunkReader, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	outer := bufio.NewReaderSize(rd, 1<<16)
	hr := &reader{r: outer, ctx: ctx}
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(hr.r, magic); err != nil {
		return nil, fmt.Errorf("reading magic: %w", classifyRead(err))
	}
	var sectioned bool
	switch string(magic) {
	case binaryMagic:
	case binaryMagicV2:
		sectioned = true
	default:
		return nil, fmt.Errorf("%w: %q", ErrBadMagic, magic)
	}
	app, syms, stacks, stackIDs, nRanks, err := decodeHeader(hr)
	if err != nil {
		return nil, err
	}
	cr := &ChunkReader{
		ctx: ctx, opt: opt, outer: outer,
		app: app, syms: syms, stacks: stacks, stackIDs: stackIDs, nRanks: nRanks,
		sectioned: sectioned,
		emitted:   make([]bool, nRanks),
	}
	if sectioned {
		cr.section = &io.LimitedReader{R: outer}
		cr.secBuf = bufio.NewReaderSize(nil, 1<<12)
	} else {
		cr.rr = hr
	}
	return cr, nil
}

// App returns the application name from the header.
func (cr *ChunkReader) App() string { return cr.app }

// NumRanks returns the rank count from the header.
func (cr *ChunkReader) NumRanks() int { return cr.nRanks }

// Symbols returns the decoded symbol table.
func (cr *ChunkReader) Symbols() *callstack.SymbolTable { return cr.syms }

// Stacks returns the decoded stack interner.
func (cr *ChunkReader) Stacks() *callstack.Interner { return cr.stacks }

// Skeleton returns a record-free trace carrying the header (app name, rank
// count, symbol tables) — the shape Model.Export needs to render a streamed
// analysis identically to a batch one.
func (cr *ChunkReader) Skeleton() (*Trace, error) {
	return NewChecked(cr.app, cr.nRanks, cr.syms, cr.stacks)
}

// Report describes what a salvage-mode read recovered; it is meaningful
// once Next has returned io.EOF and nil before that (and always nil in
// strict mode, mirroring Decode). Problems stays empty: ChunkReader streams
// records through without retaining a trace to sanitize.
func (cr *ChunkReader) Report() *SalvageReport {
	if !cr.opt.Salvage || !cr.done {
		return nil
	}
	rep := &SalvageReport{Err: cr.damage, Events: cr.events, Samples: cr.samples}
	if cr.dangling > 0 {
		rep.Problems = append(rep.Problems, Problem{
			Rank: -1, Kind: ProblemDanglingStack, Count: cr.dangling,
			Detail: "samples referencing undefined stacks cleared",
		})
	}
	if rep.Err != nil {
		for _, ok := range cr.emitted {
			if !ok {
				rep.RanksLost++
			}
		}
	}
	return rep
}

// fail finishes the stream on damage: strict mode (or cancellation, never
// absorbed) returns the classified error; salvage mode records the first
// damage and, in the sectioned container, skips to the next rank section.
func (cr *ChunkReader) fail(err error) error {
	err = classifyRead(err)
	if !cr.opt.Salvage || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		cr.done = true
		return err
	}
	if cr.damage == nil {
		cr.damage = err
	}
	if cr.sectioned && cr.started {
		// The section length prefix bounds the damage: drain the rest of
		// this rank's section and move on, like the batch decoder's
		// per-section isolation.
		if _, derr := io.Copy(io.Discard, cr.secBuf); derr == nil && cr.section.N == 0 {
			cr.rank++
			cr.started = false
			return nil
		}
	}
	// Unframed ("PFT1") damage, a short section, or a stream-level error:
	// nothing after this point is decodable.
	cr.done = true
	return nil
}

// startRank prepares decoding of the current rank: for the sectioned
// container it reads the length prefix and bounds the section reader.
func (cr *ChunkReader) startRank() error {
	if cr.sectioned {
		hr := &reader{r: cr.outer, ctx: cr.ctx}
		n := hr.uvarint()
		if hr.err != nil {
			return cr.fail(hr.err)
		}
		if n > maxSectionBytes {
			return cr.fail(fmt.Errorf("%w: rank %d section claims %d bytes, exceeds sanity limit %d",
				ErrCorrupt, cr.rank, n, uint64(maxSectionBytes)))
		}
		cr.section.N = int64(n)
		cr.secBuf.Reset(cr.section)
		cr.rr = &reader{r: cr.secBuf, ctx: cr.ctx}
	}
	cr.started = true
	cr.phase = 0
	return nil
}

// endRank verifies the section framing after the last sample: leftover bytes
// mean the length prefix and the content disagree.
func (cr *ChunkReader) endRank() error {
	if cr.sectioned {
		if rest := int64(cr.secBuf.Buffered()) + cr.section.N; rest > 0 {
			return cr.fail(fmt.Errorf("%w: rank %d section carries %d trailing bytes", ErrCorrupt, cr.rank, rest))
		}
	}
	cr.rank++
	cr.started = false
	return nil
}

// Next decodes up to limit records (limit <= 0 means 4096) of the current
// rank and returns them. A chunk never mixes ranks; empty ranks are skipped.
// The end of the stream returns io.EOF. In salvage mode damage is absorbed
// (inspect Report after EOF); cancellation is never absorbed.
func (cr *ChunkReader) Next(limit int) (Chunk, error) {
	if limit <= 0 {
		limit = 4096
	}
	for {
		if cr.done || cr.rank >= cr.nRanks {
			cr.done = true
			if cr.damage != nil && cr.events == 0 && cr.samples == 0 {
				return Chunk{}, fmt.Errorf("nothing salvageable: %w", cr.damage)
			}
			return Chunk{}, io.EOF
		}
		if !cr.started {
			if err := cr.startRank(); err != nil {
				return Chunk{}, err
			}
			continue
		}
		c := Chunk{Rank: cr.rank}
		if err := cr.decodeInto(&c, limit); err != nil {
			return Chunk{}, err
		}
		if c.Records() > 0 {
			cr.emitted[c.Rank] = true
			cr.events += len(c.Events)
			cr.samples += len(c.Samples)
			return c, nil
		}
		// The rank carried no records, or damage ate the remainder; advance.
	}
}

// decodeInto fills c with up to limit records of the current rank, advancing
// the phase machine. It stops early at the rank boundary.
func (cr *ChunkReader) decodeInto(c *Chunk, limit int) error {
	r := cr.rr
	for limit > 0 {
		switch cr.phase {
		case 0: // event count
			cr.left = r.count("event", maxDecodeCount)
			if r.err != nil {
				return cr.fail(r.err)
			}
			cr.prev = 0
			cr.phase = 1
		case 1: // events
			for cr.left > 0 && limit > 0 {
				if !r.poll() {
					return cr.fail(r.err)
				}
				e, ok := decodeEvent(r, int32(cr.rank), &cr.prev)
				if !ok {
					return cr.fail(r.err)
				}
				c.Events = append(c.Events, e)
				cr.left--
				limit--
			}
			if cr.left > 0 {
				return nil // chunk full
			}
			cr.left = r.count("sample", maxDecodeCount)
			if r.err != nil {
				return cr.fail(r.err)
			}
			cr.prev = 0
			cr.phase = 2
		case 2: // samples
			for cr.left > 0 && limit > 0 {
				if !r.poll() {
					return cr.fail(r.err)
				}
				s, ok := decodeSample(r, int32(cr.rank), &cr.prev, cr.stackIDs, cr.opt.Salvage, &cr.dangling)
				if !ok {
					return cr.fail(r.err)
				}
				c.Samples = append(c.Samples, s)
				cr.left--
				limit--
			}
			if cr.left > 0 {
				return nil // chunk full
			}
			return cr.endRank()
		}
	}
	return nil
}
