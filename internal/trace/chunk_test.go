package trace

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
)

// drainChunks pulls every chunk from cr at the given limit and reassembles
// the records into per-rank slices for comparison with a batch decode.
func drainChunks(t *testing.T, cr *ChunkReader, limit int) (events [][]Event, samples [][]Sample) {
	t.Helper()
	events = make([][]Event, cr.NumRanks())
	samples = make([][]Sample, cr.NumRanks())
	for {
		c, err := cr.Next(limit)
		if err == io.EOF {
			return events, samples
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if c.Records() == 0 {
			t.Fatal("Next returned an empty chunk instead of advancing")
		}
		events[c.Rank] = append(events[c.Rank], c.Events...)
		samples[c.Rank] = append(samples[c.Rank], c.Samples...)
	}
}

// Chunked decoding at any limit must reproduce the batch decoder's records
// bit for bit, for both container versions.
func TestChunkReaderMatchesBatch(t *testing.T) {
	tr := randomTrace(t, 21, 5, 30)
	var v2 bytes.Buffer
	if err := Encode(&v2, tr); err != nil {
		t.Fatal(err)
	}
	encodings := map[string][]byte{"v2": v2.Bytes(), "v1": encodeV1(t, tr)}
	for name, raw := range encodings {
		for _, limit := range []int{1, 7, 100, 1 << 20} {
			cr, err := NewChunkReader(context.Background(), bytes.NewReader(raw), DecodeOptions{})
			if err != nil {
				t.Fatalf("%s limit %d: %v", name, limit, err)
			}
			if cr.App() != tr.AppName || cr.NumRanks() != tr.NumRanks() {
				t.Fatalf("%s: header mismatch: app %q ranks %d", name, cr.App(), cr.NumRanks())
			}
			events, samples := drainChunks(t, cr, limit)
			got := New(cr.App(), cr.NumRanks(), cr.Symbols(), cr.Stacks())
			for r := range events {
				got.Ranks[r].Events = events[r]
				got.Ranks[r].Samples = samples[r]
			}
			equalTraces(t, tr, got)
		}
	}
}

// Damage inside one rank's v2 section must be isolated in salvage mode:
// the pre-damage prefix of that rank survives and every other rank decodes
// completely, matching the batch salvage decoder.
func TestChunkReaderSalvageSectionDamage(t *testing.T) {
	tr := randomTrace(t, 3, 2, 30)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	sec1 := encodeRankSection(tr.Ranks[1])
	l1 := sec1.Len()
	putSectionBuf(sec1)
	sec0End := len(raw) - l1 - uvarintLen(uint64(l1))
	raw[sec0End-1] = 0xFF

	// Strict mode refuses the stream.
	cr, err := NewChunkReader(context.Background(), bytes.NewReader(raw), DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	strictErr := func() error {
		for {
			if _, err := cr.Next(0); err != nil {
				return err
			}
		}
	}()
	if strictErr == io.EOF || !errors.Is(strictErr, ErrFormat) {
		t.Fatalf("strict chunked decode: got %v, want ErrFormat", strictErr)
	}

	// Salvage keeps rank 1 whole.
	cr, err = NewChunkReader(context.Background(), bytes.NewReader(raw), DecodeOptions{Salvage: true})
	if err != nil {
		t.Fatal(err)
	}
	events, samples := drainChunks(t, cr, 16)
	rep := cr.Report()
	if rep == nil || rep.Err == nil {
		t.Fatalf("salvage report missing the damage: %+v", rep)
	}
	if len(events[1]) != len(tr.Ranks[1].Events) || len(samples[1]) != len(tr.Ranks[1].Samples) {
		t.Fatalf("rank 1 lost records to rank 0's damage: %d/%d events, %d/%d samples",
			len(events[1]), len(tr.Ranks[1].Events), len(samples[1]), len(tr.Ranks[1].Samples))
	}
	if got, want := len(events[0])+len(samples[0]), len(tr.Ranks[0].Events)+len(tr.Ranks[0].Samples); got >= want {
		t.Fatalf("rank 0 kept %d of %d records despite damage", got, want)
	}
}

// Truncation mid-stream salvages the decoded prefix and reports lost ranks.
func TestChunkReaderSalvageTruncation(t *testing.T) {
	tr := randomTrace(t, 5, 4, 25)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()*2/3]
	cr, err := NewChunkReader(context.Background(), bytes.NewReader(cut), DecodeOptions{Salvage: true})
	if err != nil {
		t.Fatal(err)
	}
	events, _ := drainChunks(t, cr, 64)
	rep := cr.Report()
	if rep == nil || rep.Err == nil || !errors.Is(rep.Err, ErrTruncated) {
		t.Fatalf("report did not note the truncation: %+v", rep)
	}
	if rep.RanksLost == 0 {
		t.Fatalf("no ranks reported lost: %+v", rep)
	}
	if len(events[0]) == 0 {
		t.Fatal("salvage lost rank 0 to tail truncation")
	}
}

// Cancellation must surface promptly and never be absorbed by salvage mode.
func TestChunkReaderCancellation(t *testing.T) {
	tr := randomTrace(t, 9, 2, 2000)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cr, err := NewChunkReader(ctx, bytes.NewReader(buf.Bytes()), DecodeOptions{Salvage: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cr.Next(8); err != nil {
		t.Fatalf("first chunk: %v", err)
	}
	cancel()
	for i := 0; ; i++ {
		_, err := cr.Next(1 << 16)
		if errors.Is(err, context.Canceled) {
			break
		}
		if err != nil {
			t.Fatalf("got %v, want context.Canceled", err)
		}
		if i > 4 {
			t.Fatal("cancellation not observed within a few chunks")
		}
	}
}

// The legacy unframed container cannot isolate damage: salvage keeps the
// prefix before the damage point and loses everything after.
func TestChunkReaderSalvageV1(t *testing.T) {
	tr := randomTrace(t, 13, 3, 20)
	raw := encodeV1(t, tr)
	cut := raw[:len(raw)*3/4]
	cr, err := NewChunkReader(context.Background(), bytes.NewReader(cut), DecodeOptions{Salvage: true})
	if err != nil {
		t.Fatal(err)
	}
	events, _ := drainChunks(t, cr, 32)
	rep := cr.Report()
	if rep == nil || rep.Err == nil {
		t.Fatalf("v1 truncation not reported: %+v", rep)
	}
	if len(events[0]) != len(tr.Ranks[0].Events) {
		t.Fatalf("rank 0 should predate the cut: got %d of %d events",
			len(events[0]), len(tr.Ranks[0].Events))
	}
}
