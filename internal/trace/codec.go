package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"phasefold/internal/callstack"
	"phasefold/internal/counters"
	"phasefold/internal/sim"
)

// Binary trace format ("PFT1"): a compact varint-based encoding analogous in
// role to Paraver's .prv container. Layout:
//
//	magic "PFT1"
//	app name (string)
//	symbol table: count, then {name, file, startLine, endLine}
//	stack table:  count, then {frames: count, {routine, line}...}
//	rank count
//	per rank: event count, events (delta-coded times), sample count, samples
//
// Counter snapshots are encoded as a presence bitmap plus varint values so
// multiplexed traces (mostly-Missing sets) stay small.

const binaryMagic = "PFT1"

type writer struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (w *writer) uvarint(v uint64) {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.buf[:], v)
	_, w.err = w.w.Write(w.buf[:n])
}

func (w *writer) varint(v int64) {
	if w.err != nil {
		return
	}
	n := binary.PutVarint(w.buf[:], v)
	_, w.err = w.w.Write(w.buf[:n])
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	if w.err != nil {
		return
	}
	_, w.err = w.w.WriteString(s)
}

func (w *writer) counterSet(s counters.Set) {
	var mask uint64
	for i, v := range s {
		if v != counters.Missing {
			mask |= 1 << uint(i)
		}
	}
	w.uvarint(mask)
	for i, v := range s {
		if mask&(1<<uint(i)) != 0 {
			w.varint(v)
		}
	}
}

// Encode writes t to w in the binary trace format.
func Encode(w io.Writer, t *Trace) error {
	bw := &writer{w: bufio.NewWriterSize(w, 1<<16)}
	if _, err := bw.w.WriteString(binaryMagic); err != nil {
		return err
	}
	bw.str(t.AppName)
	routines := t.Symbols.Routines()
	bw.uvarint(uint64(len(routines)))
	for _, r := range routines {
		bw.str(r.Name)
		bw.str(r.File)
		bw.uvarint(uint64(r.StartLine))
		bw.uvarint(uint64(r.EndLine))
	}
	stacks := t.Stacks.All()
	bw.uvarint(uint64(len(stacks)))
	for _, s := range stacks {
		bw.uvarint(uint64(len(s)))
		for _, f := range s {
			bw.varint(int64(f.Routine))
			bw.uvarint(uint64(f.Line))
		}
	}
	bw.uvarint(uint64(len(t.Ranks)))
	for _, rd := range t.Ranks {
		bw.uvarint(uint64(len(rd.Events)))
		var prev sim.Time
		for _, e := range rd.Events {
			bw.uvarint(uint64(e.Time - prev))
			prev = e.Time
			bw.uvarint(uint64(e.Type))
			bw.varint(e.Value)
			bw.uvarint(uint64(e.Group))
			bw.counterSet(e.Counters)
		}
		bw.uvarint(uint64(len(rd.Samples)))
		prev = 0
		for _, s := range rd.Samples {
			bw.uvarint(uint64(s.Time - prev))
			prev = s.Time
			bw.varint(int64(s.Stack))
			bw.uvarint(uint64(s.Group))
			bw.counterSet(s.Counters)
		}
	}
	if bw.err != nil {
		return bw.err
	}
	return bw.w.Flush()
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.err = err
	}
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r.r)
	if err != nil {
		r.err = err
	}
	return v
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > 1<<20 {
		r.err = fmt.Errorf("trace: string length %d exceeds sanity limit", n)
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.err = err
		return ""
	}
	return string(b)
}

func (r *reader) counterSet() counters.Set {
	s := counters.AllMissing()
	mask := r.uvarint()
	if r.err != nil {
		return s
	}
	for i := 0; i < int(counters.NumIDs); i++ {
		if mask&(1<<uint(i)) != 0 {
			s[i] = r.varint()
		}
	}
	return s
}

const (
	maxDecodeCount = 1 << 28 // sanity limit on decoded collection sizes
)

func (r *reader) count(what string) int {
	n := r.uvarint()
	if r.err == nil && n > maxDecodeCount {
		r.err = fmt.Errorf("trace: %s count %d exceeds sanity limit", what, n)
	}
	return int(n)
}

// Decode reads a binary-format trace from rd.
func Decode(rd io.Reader) (*Trace, error) {
	r := &reader{r: bufio.NewReaderSize(rd, 1<<16)}
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(r.r, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	app := r.str()
	syms := callstack.NewSymbolTable()
	nRoutines := r.count("routine")
	for i := 0; i < nRoutines && r.err == nil; i++ {
		syms.Define(callstack.Routine{
			Name:      r.str(),
			File:      r.str(),
			StartLine: int(r.uvarint()),
			EndLine:   int(r.uvarint()),
		})
	}
	stacks := callstack.NewInterner()
	nStacks := r.count("stack")
	stackIDs := make([]callstack.StackID, 0, nStacks)
	for i := 0; i < nStacks && r.err == nil; i++ {
		nf := r.count("frame")
		st := make(callstack.Stack, nf)
		for j := 0; j < nf && r.err == nil; j++ {
			st[j] = callstack.Frame{
				Routine: callstack.RoutineID(r.varint()),
				Line:    int(r.uvarint()),
			}
		}
		stackIDs = append(stackIDs, stacks.Intern(st))
	}
	nRanks := r.count("rank")
	if r.err != nil {
		return nil, r.err
	}
	if nRanks == 0 {
		return nil, fmt.Errorf("trace: decoded trace has no ranks")
	}
	t := New(app, nRanks, syms, stacks)
	for rank := 0; rank < nRanks && r.err == nil; rank++ {
		nev := r.count("event")
		rd := t.Ranks[rank]
		rd.Events = make([]Event, 0, min(nev, 1<<20))
		var prev sim.Time
		for i := 0; i < nev && r.err == nil; i++ {
			prev += sim.Time(r.uvarint())
			rd.Events = append(rd.Events, Event{
				Time:     prev,
				Rank:     int32(rank),
				Type:     EventType(r.uvarint()),
				Value:    r.varint(),
				Group:    uint8(r.uvarint()),
				Counters: r.counterSet(),
			})
		}
		nsmp := r.count("sample")
		rd.Samples = make([]Sample, 0, min(nsmp, 1<<20))
		prev = 0
		for i := 0; i < nsmp && r.err == nil; i++ {
			prev += sim.Time(r.uvarint())
			sid := callstack.StackID(r.varint())
			if sid != callstack.NoStack {
				if sid < 0 || int(sid) >= len(stackIDs) {
					return nil, fmt.Errorf("trace: sample references stack %d of %d", sid, len(stackIDs))
				}
				sid = stackIDs[sid]
			}
			rd.Samples = append(rd.Samples, Sample{
				Time:     prev,
				Rank:     int32(rank),
				Stack:    sid,
				Group:    uint8(r.uvarint()),
				Counters: r.counterSet(),
			})
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: decoded trace invalid: %w", err)
	}
	return t, nil
}
