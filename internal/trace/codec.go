package trace

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"phasefold/internal/callstack"
	"phasefold/internal/counters"
	"phasefold/internal/obs"
	"phasefold/internal/sim"
)

// Binary trace format ("PFT1"): a compact varint-based encoding analogous in
// role to Paraver's .prv container. Layout:
//
//	magic "PFT1"
//	app name (string)
//	symbol table: count, then {name, file, startLine, endLine}
//	stack table:  count, then {frames: count, {routine, line}...}
//	rank count
//	per rank: event count, events (delta-coded times), sample count, samples
//
// Counter snapshots are encoded as a presence bitmap plus varint values so
// multiplexed traces (mostly-Missing sets) stay small.

const binaryMagic = "PFT1"

type writer struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (w *writer) uvarint(v uint64) {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.buf[:], v)
	_, w.err = w.w.Write(w.buf[:n])
}

func (w *writer) varint(v int64) {
	if w.err != nil {
		return
	}
	n := binary.PutVarint(w.buf[:], v)
	_, w.err = w.w.Write(w.buf[:n])
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	if w.err != nil {
		return
	}
	_, w.err = w.w.WriteString(s)
}

func (w *writer) counterSet(s counters.Set) {
	var mask uint64
	for i, v := range s {
		if v != counters.Missing {
			mask |= 1 << uint(i)
		}
	}
	w.uvarint(mask)
	for i, v := range s {
		if mask&(1<<uint(i)) != 0 {
			w.varint(v)
		}
	}
}

// Encode writes t to w in the binary trace format.
func Encode(w io.Writer, t *Trace) error {
	bw := &writer{w: bufio.NewWriterSize(w, 1<<16)}
	if _, err := bw.w.WriteString(binaryMagic); err != nil {
		return err
	}
	bw.str(t.AppName)
	routines := t.Symbols.Routines()
	bw.uvarint(uint64(len(routines)))
	for _, r := range routines {
		bw.str(r.Name)
		bw.str(r.File)
		bw.uvarint(uint64(r.StartLine))
		bw.uvarint(uint64(r.EndLine))
	}
	stacks := t.Stacks.All()
	bw.uvarint(uint64(len(stacks)))
	for _, s := range stacks {
		bw.uvarint(uint64(len(s)))
		for _, f := range s {
			bw.varint(int64(f.Routine))
			bw.uvarint(uint64(f.Line))
		}
	}
	bw.uvarint(uint64(len(t.Ranks)))
	for _, rd := range t.Ranks {
		bw.uvarint(uint64(len(rd.Events)))
		var prev sim.Time
		for _, e := range rd.Events {
			bw.uvarint(uint64(e.Time - prev))
			prev = e.Time
			bw.uvarint(uint64(e.Type))
			bw.varint(e.Value)
			bw.uvarint(uint64(e.Group))
			bw.counterSet(e.Counters)
		}
		bw.uvarint(uint64(len(rd.Samples)))
		prev = 0
		for _, s := range rd.Samples {
			bw.uvarint(uint64(s.Time - prev))
			prev = s.Time
			bw.varint(int64(s.Stack))
			bw.uvarint(uint64(s.Group))
			bw.counterSet(s.Counters)
		}
	}
	if bw.err != nil {
		return bw.err
	}
	return bw.w.Flush()
}

type reader struct {
	r   *bufio.Reader
	ctx context.Context
	n   int // records decoded since the last cancellation poll
	err error
}

// pollInterval is how many records the decoder processes between context
// polls: frequent enough that a deadline interrupts a multi-gigabyte stream
// within milliseconds, rare enough to stay invisible in the decode profile.
const pollInterval = 1024

// poll checks the decode context every pollInterval records. It reports
// whether decoding may continue.
func (r *reader) poll() bool {
	if r.err != nil {
		return false
	}
	r.n++
	if r.n%pollInterval == 0 {
		if err := r.ctx.Err(); err != nil {
			r.err = err
			return false
		}
	}
	return true
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.err = err
	}
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r.r)
	if err != nil {
		r.err = err
	}
	return v
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > 1<<20 {
		r.err = fmt.Errorf("trace: string length %d exceeds sanity limit", n)
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.err = err
		return ""
	}
	return string(b)
}

func (r *reader) counterSet() counters.Set {
	s := counters.AllMissing()
	mask := r.uvarint()
	if r.err != nil {
		return s
	}
	if mask >= 1<<uint(counters.NumIDs) {
		r.err = fmt.Errorf("%w: counter mask %#x has undefined bits", ErrCorrupt, mask)
		return s
	}
	for i := 0; i < int(counters.NumIDs); i++ {
		if mask&(1<<uint(i)) != 0 {
			s[i] = r.varint()
		}
	}
	return s
}

// Sanity limits on decoded collection sizes. Counts come straight from the
// (possibly hostile) input, so nothing may allocate proportionally to a
// count before enough bytes to justify it have actually been read; these
// caps bound the damage a single fabricated count can do.
const (
	maxDecodeCount = 1 << 28 // events/samples per rank
	maxTableCount  = 1 << 22 // routines, stacks, ranks
	maxStackFrames = 1 << 12 // frames per call stack
)

func (r *reader) count(what string, limit uint64) int {
	n := r.uvarint()
	if r.err != nil {
		// A partially-read varint can carry an arbitrary value; never let
		// it reach a caller that might size an allocation with it.
		return 0
	}
	if n > limit {
		r.err = fmt.Errorf("%w: %s count %d exceeds sanity limit %d", ErrCorrupt, what, n, limit)
		return 0
	}
	return int(n)
}

// DecodeOptions configures trace decoding.
type DecodeOptions struct {
	// Salvage enables lenient decoding: instead of failing on a truncated
	// or corrupt stream, DecodeWith keeps every record decoded before the
	// damage, repairs the result with Sanitize, and reports what happened
	// in the SalvageReport. The header (magic, symbol and stack tables)
	// must still decode — without it the records are uninterpretable.
	Salvage bool
}

// SalvageReport describes what a lenient decode recovered.
type SalvageReport struct {
	// Err is the decode error that was suppressed, wrapping ErrTruncated
	// or ErrCorrupt; nil when the stream decoded cleanly.
	Err error
	// Events and Samples count the records recovered.
	Events, Samples int
	// RanksLost counts ranks whose streams were cut short or never
	// reached before the damage point.
	RanksLost int
	// Problems lists the repairs Sanitize made on the recovered records.
	Problems []Problem
}

// Complete reports whether the stream decoded without damage.
func (sr *SalvageReport) Complete() bool {
	return sr != nil && sr.Err == nil && len(sr.Problems) == 0
}

// Summary renders the report as a short human-readable line.
func (sr *SalvageReport) Summary() string {
	if sr.Complete() {
		return fmt.Sprintf("decoded cleanly: %d events, %d samples", sr.Events, sr.Samples)
	}
	s := fmt.Sprintf("recovered %d events, %d samples (%d ranks damaged, %d repairs)",
		sr.Events, sr.Samples, sr.RanksLost, len(sr.Problems))
	if sr.Err != nil {
		// errors.Join renders multi-line; flatten for the one-line summary.
		s += ": " + strings.ReplaceAll(fmt.Sprint(sr.Err), "\n", ": ")
	}
	return s
}

// Decode reads a binary-format trace from rd, failing on any damage.
func Decode(rd io.Reader) (*Trace, error) {
	t, _, err := DecodeWith(rd, DecodeOptions{})
	return t, err
}

// DecodeContext is Decode under a cancellable context; see DecodeWithContext.
func DecodeContext(ctx context.Context, rd io.Reader) (*Trace, error) {
	t, _, err := DecodeWithContext(ctx, rd, DecodeOptions{})
	return t, err
}

// DecodeWith reads a binary-format trace from rd under the given options.
// The SalvageReport is non-nil exactly when opt.Salvage is set and any
// records were recovered; errors wrap the package sentinels (ErrBadMagic,
// ErrTruncated, ErrCorrupt, ErrNoRanks, ErrInvalid) for errors.Is dispatch.
func DecodeWith(rd io.Reader, opt DecodeOptions) (*Trace, *SalvageReport, error) {
	return DecodeWithContext(context.Background(), rd, opt)
}

// DecodeWithContext is DecodeWith under a cancellable context. The record
// loop polls ctx every few thousand records, so a deadline or cancellation
// interrupts even a multi-gigabyte stream promptly; the resulting error
// matches errors.Is(err, context.Canceled/DeadlineExceeded) and is never
// absorbed by salvage mode (cancellation says nothing about the input).
// Cancellation can only interrupt a Read that returns; a reader that blocks
// indefinitely without honoring ctx itself still blocks the decode.
func DecodeWithContext(ctx context.Context, rd io.Reader, opt DecodeOptions) (*Trace, *SalvageReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	ctx, span := obs.StartSpan(ctx, "decode")
	defer span.End()
	finish := startDecodePass(ctx, span, "binary", opt)
	r := &reader{r: bufio.NewReaderSize(rd, 1<<16), ctx: ctx}
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(r.r, magic); err != nil {
		return nil, nil, fmt.Errorf("reading magic: %w", classifyRead(err))
	}
	if string(magic) != binaryMagic {
		return nil, nil, fmt.Errorf("%w: %q", ErrBadMagic, magic)
	}
	app := r.str()
	syms := callstack.NewSymbolTable()
	nRoutines := r.count("routine", maxTableCount)
	for i := 0; i < nRoutines && r.poll(); i++ {
		rt := callstack.Routine{
			Name:      r.str(),
			File:      r.str(),
			StartLine: int(r.uvarint()),
			EndLine:   int(r.uvarint()),
		}
		if r.err == nil {
			// Define panics on malformed routines (a programming error
			// in-process); from the wire, malformation is corruption.
			if cerr := rt.Check(); cerr != nil {
				r.err = fmt.Errorf("%w: routine %d: %v", ErrCorrupt, i, cerr)
				break
			}
			syms.Define(rt)
		}
	}
	stacks := callstack.NewInterner()
	nStacks := r.count("stack", maxTableCount)
	stackIDs := make([]callstack.StackID, 0, min(nStacks, 1<<16))
	for i := 0; i < nStacks && r.poll(); i++ {
		nf := r.count("frame", maxStackFrames)
		if r.err != nil {
			break
		}
		st := make(callstack.Stack, 0, min(nf, 64))
		for j := 0; j < nf && r.err == nil; j++ {
			st = append(st, callstack.Frame{
				Routine: callstack.RoutineID(r.varint()),
				Line:    int(r.uvarint()),
			})
		}
		if r.err != nil {
			break
		}
		stackIDs = append(stackIDs, stacks.Intern(st))
	}
	nRanks := r.count("rank", maxTableCount)
	if r.err != nil {
		// Header damage: the symbol and stack tables interpret every
		// record, so nothing downstream is salvageable without them.
		return nil, nil, classifyRead(r.err)
	}
	if nRanks == 0 {
		return nil, nil, fmt.Errorf("%w: decoded trace has no ranks", ErrNoRanks)
	}
	t, err := NewChecked(app, nRanks, syms, stacks)
	if err != nil {
		return nil, nil, err
	}
	danglingStacks := 0
	for rank := 0; rank < nRanks && r.err == nil; rank++ {
		nev := r.count("event", maxDecodeCount)
		rd := t.Ranks[rank]
		rd.Events = make([]Event, 0, min(nev, 1<<20))
		var prev sim.Time
		for i := 0; i < nev && r.poll(); i++ {
			prev += sim.Time(r.uvarint())
			e := Event{
				Time:     prev,
				Rank:     int32(rank),
				Type:     EventType(r.uvarint()),
				Value:    r.varint(),
				Group:    uint8(r.uvarint()),
				Counters: r.counterSet(),
			}
			if r.err != nil {
				break // discard the partially-read record
			}
			rd.Events = append(rd.Events, e)
		}
		nsmp := r.count("sample", maxDecodeCount)
		rd.Samples = make([]Sample, 0, min(nsmp, 1<<20))
		prev = 0
		for i := 0; i < nsmp && r.poll(); i++ {
			prev += sim.Time(r.uvarint())
			sid := callstack.StackID(r.varint())
			if sid != callstack.NoStack && r.err == nil {
				if sid < 0 || int(sid) >= len(stackIDs) {
					if !opt.Salvage {
						r.err = fmt.Errorf("%w: sample references stack %d of %d", ErrCorrupt, sid, len(stackIDs))
						break
					}
					danglingStacks++
					sid = callstack.NoStack
				} else {
					sid = stackIDs[sid]
				}
			}
			s := Sample{
				Time:     prev,
				Rank:     int32(rank),
				Stack:    sid,
				Group:    uint8(r.uvarint()),
				Counters: r.counterSet(),
			}
			if r.err != nil {
				break
			}
			rd.Samples = append(rd.Samples, s)
		}
	}
	if r.err != nil && (!opt.Salvage ||
		errors.Is(r.err, context.Canceled) || errors.Is(r.err, context.DeadlineExceeded)) {
		return nil, nil, classifyRead(r.err)
	}
	if !opt.Salvage {
		if err := t.Validate(); err != nil {
			return nil, nil, fmt.Errorf("decoded trace invalid: %w", err)
		}
		finish(t, nil)
		return t, nil, nil
	}

	// Salvage path: keep what was recovered, repair it, and report.
	report := &SalvageReport{Err: classifyRead(r.err)}
	if danglingStacks > 0 {
		report.Problems = append(report.Problems, Problem{
			Rank: -1, Kind: ProblemDanglingStack, Count: danglingStacks,
			Detail: "samples referencing undefined stacks cleared",
		})
	}
	report.Problems = append(report.Problems, t.Sanitize()...)
	for _, rd := range t.Ranks {
		report.Events += len(rd.Events)
		report.Samples += len(rd.Samples)
	}
	if report.Err != nil {
		for _, rd := range t.Ranks {
			if len(rd.Events) == 0 && len(rd.Samples) == 0 {
				report.RanksLost++
			}
		}
	}
	if report.Err != nil && report.Events == 0 && report.Samples == 0 {
		// A record-free trace is only a failure when damage ate the records;
		// a file that legitimately encodes no records decodes fine strictly
		// and must decode fine here too.
		return nil, nil, fmt.Errorf("nothing salvageable: %w", report.Err)
	}
	if err := t.Validate(); err != nil {
		return nil, nil, fmt.Errorf("salvaged trace still invalid: %w", err)
	}
	finish(t, report)
	return t, report, nil
}

// startDecodePass counts one decoder invocation and returns the closure a
// successful decode calls to land its volume on the caller's telemetry —
// record counts as span attributes and run-wide counters, plus the decode
// latency histogram. All of it is inert when the context carries no
// telemetry.
func startDecodePass(ctx context.Context, span *obs.Span, format string, opt DecodeOptions) func(*Trace, *SalvageReport) {
	mode := "strict"
	if opt.Salvage {
		mode = "salvage"
	}
	span.SetAttr("format", format)
	span.SetAttr("mode", mode)
	reg := obs.Metrics(ctx)
	reg.Counter(obs.MetricDecodePasses, "Decoder passes run, by format and mode.",
		obs.Label{K: "format", V: format}, obs.Label{K: "mode", V: mode}).Inc()
	start := time.Now()
	return func(t *Trace, report *SalvageReport) {
		reg.Histogram(obs.MetricDecodeDuration, "Trace decode duration in seconds.",
			obs.DurationBuckets(), obs.Label{K: "format", V: format}).
			Observe(time.Since(start).Seconds())
		events, samples := 0, 0
		for _, rd := range t.Ranks {
			events += len(rd.Events)
			samples += len(rd.Samples)
		}
		span.SetAttr("ranks", len(t.Ranks))
		span.SetAttr("events", events)
		span.SetAttr("samples", samples)
		reg.Counter(obs.MetricRecordsDecoded, "Trace records (events and samples) decoded.").
			Add(int64(events + samples))
		if report == nil {
			return
		}
		repairs := int64(0)
		for _, p := range report.Problems {
			repairs += int64(p.Count)
		}
		if repairs > 0 {
			span.SetAttr("salvage_repairs", repairs)
			reg.Counter(obs.MetricSalvageRepairs,
				"Records repaired or cleared by salvage decoding.").Add(repairs)
		}
	}
}
