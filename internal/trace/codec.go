package trace

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"phasefold/internal/callstack"
	"phasefold/internal/counters"
	"phasefold/internal/exec"
	"phasefold/internal/obs"
	"phasefold/internal/par"
	"phasefold/internal/sim"
)

// Binary trace format ("PFT2"): a compact varint-based encoding analogous in
// role to Paraver's .prv container. Layout:
//
//	magic "PFT2"
//	app name (string)
//	symbol table: count, then {name, file, startLine, endLine}
//	stack table:  count, then {frames: count, {routine, line}...}
//	rank count
//	per rank: section byte length, then the section:
//	  event count, events (delta-coded times), sample count, samples
//
// The per-rank byte-length prefix is what makes the container parallel:
// sections are sliced off the stream sequentially (I/O is one pipe) but
// decoded concurrently, each into its own rank slot, so the merged trace is
// identical at any worker count. The legacy "PFT1" layout — same header,
// rank bodies concatenated with no length prefixes — still decodes, on a
// single-goroutine path, because existing files and the fuzz corpus carry it.
//
// Counter snapshots are encoded as a presence bitmap plus varint values so
// multiplexed traces (mostly-Missing sets) stay small.

const (
	binaryMagic   = "PFT1" // legacy: one sequential varint stream
	binaryMagicV2 = "PFT2" // current: length-prefixed per-rank sections
)

type stringWriter interface {
	io.Writer
	io.StringWriter
}

type writer struct {
	w   stringWriter
	buf [binary.MaxVarintLen64]byte
	err error
}

func (w *writer) uvarint(v uint64) {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.buf[:], v)
	_, w.err = w.w.Write(w.buf[:n])
}

func (w *writer) varint(v int64) {
	if w.err != nil {
		return
	}
	n := binary.PutVarint(w.buf[:], v)
	_, w.err = w.w.Write(w.buf[:n])
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	if w.err != nil {
		return
	}
	_, w.err = w.w.WriteString(s)
}

func (w *writer) bytes(b []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

func (w *writer) counterSet(s counters.Set) {
	var mask uint64
	for i, v := range s {
		if v != counters.Missing {
			mask |= 1 << uint(i)
		}
	}
	w.uvarint(mask)
	for i, v := range s {
		if mask&(1<<uint(i)) != 0 {
			w.varint(v)
		}
	}
}

// sectionPool recycles the per-rank section buffers used by both Encode and
// Decode. Batch runs decode hundreds of traces back to back; without reuse
// every pass re-grows multi-megabyte buffers just to throw them away.
var sectionPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledSection bounds what goes back in the pool: one pathological
// multi-gigabyte trace must not pin its buffers for the process lifetime.
const maxPooledSection = 16 << 20

func getSectionBuf() *bytes.Buffer {
	b := sectionPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putSectionBuf(b *bytes.Buffer) {
	if b != nil && b.Cap() <= maxPooledSection {
		sectionPool.Put(b)
	}
}

// Encode writes t to w in the current binary trace format ("PFT2").
// Rank sections are independent byte ranges, so their payloads are encoded
// concurrently and written out in rank order; the emitted bytes are
// identical at any worker count.
func Encode(w io.Writer, t *Trace) error {
	out := bufio.NewWriterSize(w, 1<<16)
	bw := &writer{w: out}
	if _, err := out.WriteString(binaryMagicV2); err != nil {
		return err
	}
	encodeHeader(bw, t)
	sections := make([]*bytes.Buffer, len(t.Ranks))
	par.ForEach(0, len(t.Ranks), func(_, i int) {
		sections[i] = encodeRankSection(t.Ranks[i])
	})
	for _, sec := range sections {
		bw.uvarint(uint64(sec.Len()))
		bw.bytes(sec.Bytes())
		putSectionBuf(sec)
	}
	if bw.err != nil {
		return bw.err
	}
	return out.Flush()
}

// encodeHeader writes everything up to the rank sections: app name, symbol
// table, stack table, and the rank count. The header is byte-identical
// between the "PFT1" and "PFT2" layouts; only what follows differs.
func encodeHeader(bw *writer, t *Trace) {
	bw.str(t.AppName)
	routines := t.Symbols.Routines()
	bw.uvarint(uint64(len(routines)))
	for _, r := range routines {
		bw.str(r.Name)
		bw.str(r.File)
		bw.uvarint(uint64(r.StartLine))
		bw.uvarint(uint64(r.EndLine))
	}
	stacks := t.Stacks.All()
	bw.uvarint(uint64(len(stacks)))
	for _, s := range stacks {
		bw.uvarint(uint64(len(s)))
		for _, f := range s {
			bw.varint(int64(f.Routine))
			bw.uvarint(uint64(f.Line))
		}
	}
	bw.uvarint(uint64(len(t.Ranks)))
}

func encodeRankSection(rd *RankData) *bytes.Buffer {
	buf := getSectionBuf()
	bw := &writer{w: buf}
	bw.uvarint(uint64(len(rd.Events)))
	var prev sim.Time
	for _, e := range rd.Events {
		bw.uvarint(uint64(e.Time - prev))
		prev = e.Time
		bw.uvarint(uint64(e.Type))
		bw.varint(e.Value)
		bw.uvarint(uint64(e.Group))
		bw.counterSet(e.Counters)
	}
	bw.uvarint(uint64(len(rd.Samples)))
	prev = 0
	for _, s := range rd.Samples {
		bw.uvarint(uint64(s.Time - prev))
		prev = s.Time
		bw.varint(int64(s.Stack))
		bw.uvarint(uint64(s.Group))
		bw.counterSet(s.Counters)
	}
	return buf
}

// byteReader is what the decoder needs from its source: the stream path
// supplies a *bufio.Reader, the per-section path a *bytes.Reader.
type byteReader interface {
	io.Reader
	io.ByteReader
}

type reader struct {
	r   byteReader
	ctx context.Context
	n   int // records decoded since the last cancellation poll
	err error
}

// pollInterval is how many records the decoder processes between context
// polls: frequent enough that a deadline interrupts a multi-gigabyte stream
// within milliseconds, rare enough to stay invisible in the decode profile.
const pollInterval = 1024

// poll checks the decode context every pollInterval records. It reports
// whether decoding may continue.
func (r *reader) poll() bool {
	if r.err != nil {
		return false
	}
	r.n++
	if r.n%pollInterval == 0 {
		if err := r.ctx.Err(); err != nil {
			r.err = err
			return false
		}
	}
	return true
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.err = err
	}
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r.r)
	if err != nil {
		r.err = err
	}
	return v
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > 1<<20 {
		r.err = fmt.Errorf("trace: string length %d exceeds sanity limit", n)
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.err = err
		return ""
	}
	return string(b)
}

func (r *reader) counterSet() counters.Set {
	s := counters.AllMissing()
	mask := r.uvarint()
	if r.err != nil {
		return s
	}
	if mask >= 1<<uint(counters.NumIDs) {
		r.err = fmt.Errorf("%w: counter mask %#x has undefined bits", ErrCorrupt, mask)
		return s
	}
	for i := 0; i < int(counters.NumIDs); i++ {
		if mask&(1<<uint(i)) != 0 {
			s[i] = r.varint()
		}
	}
	return s
}

// Sanity limits on decoded collection sizes. Counts come straight from the
// (possibly hostile) input, so nothing may allocate proportionally to a
// count before enough bytes to justify it have actually been read; these
// caps bound the damage a single fabricated count can do.
const (
	maxDecodeCount  = 1 << 28 // events/samples per rank
	maxTableCount   = 1 << 22 // routines, stacks, ranks
	maxStackFrames  = 1 << 12 // frames per call stack
	maxSectionBytes = 1 << 36 // bytes per rank section (v2 length prefix)
)

func (r *reader) count(what string, limit uint64) int {
	n := r.uvarint()
	if r.err != nil {
		// A partially-read varint can carry an arbitrary value; never let
		// it reach a caller that might size an allocation with it.
		return 0
	}
	if n > limit {
		r.err = fmt.Errorf("%w: %s count %d exceeds sanity limit %d", ErrCorrupt, what, n, limit)
		return 0
	}
	return int(n)
}

// DecodeOptions configures trace decoding.
type DecodeOptions struct {
	// Salvage enables lenient decoding: instead of failing on a truncated
	// or corrupt stream, Decode keeps every record decoded before the
	// damage, repairs the result with Sanitize, and reports what happened
	// in the SalvageReport. The header (magic, symbol and stack tables)
	// must still decode — without it the records are uninterpretable.
	Salvage bool
	// Exec composes the execution knobs shared with the analysis stages.
	// The decoder consumes Parallelism — the goroutine cap for per-rank
	// sections of the current ("PFT2") container; zero or negative means
	// runtime.GOMAXPROCS(0), legacy single-stream ("PFT1") input decodes on
	// one goroutine regardless, and the decoded trace (and in salvage mode
	// the report) is identical at any setting. Budget rides along for
	// callers composing one struct; the decoder does not enforce it. The
	// fields are promoted, so opt.Parallelism keeps working; only composite
	// literals need the Exec wrapper.
	exec.Exec
}

// SalvageReport describes what a lenient decode recovered.
type SalvageReport struct {
	// Err is the decode error that was suppressed, wrapping ErrTruncated
	// or ErrCorrupt; nil when the stream decoded cleanly.
	Err error
	// Events and Samples count the records recovered.
	Events, Samples int
	// RanksLost counts ranks whose streams were cut short or never
	// reached before the damage point.
	RanksLost int
	// Problems lists the repairs Sanitize made on the recovered records.
	Problems []Problem
}

// Complete reports whether the stream decoded without damage.
func (sr *SalvageReport) Complete() bool {
	return sr != nil && sr.Err == nil && len(sr.Problems) == 0
}

// Summary renders the report as a short human-readable line.
func (sr *SalvageReport) Summary() string {
	if sr.Complete() {
		return fmt.Sprintf("decoded cleanly: %d events, %d samples", sr.Events, sr.Samples)
	}
	s := fmt.Sprintf("recovered %d events, %d samples (%d ranks damaged, %d repairs)",
		sr.Events, sr.Samples, sr.RanksLost, len(sr.Problems))
	if sr.Err != nil {
		// errors.Join renders multi-line; flatten for the one-line summary.
		s += ": " + strings.ReplaceAll(fmt.Sprint(sr.Err), "\n", ": ")
	}
	return s
}

// Decode reads a binary-format trace from rd under ctx and opt. It accepts
// both the current "PFT2" container (per-rank sections decoded concurrently,
// opt.Parallelism workers) and the legacy "PFT1" stream; either way the
// result is deterministic. The SalvageReport is non-nil exactly when
// opt.Salvage is set and any records were recovered; errors wrap the package
// sentinels (ErrBadMagic, ErrTruncated, ErrCorrupt, ErrNoRanks, ErrInvalid —
// all matching ErrFormat) for errors.Is dispatch.
//
// The record loops poll ctx every few thousand records, so a deadline or
// cancellation interrupts even a multi-gigabyte stream promptly; the
// resulting error matches errors.Is(err, context.Canceled/DeadlineExceeded)
// and is never absorbed by salvage mode (cancellation says nothing about the
// input). Cancellation can only interrupt a Read that returns; a reader that
// blocks indefinitely without honoring ctx itself still blocks the decode.
func Decode(ctx context.Context, rd io.Reader, opt DecodeOptions) (*Trace, *SalvageReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	ctx, span := obs.StartSpan(ctx, "decode")
	defer span.End()
	cr := &countingReader{r: rd}
	finish := startDecodePass(ctx, span, "binary", opt, cr)
	r := &reader{r: bufio.NewReaderSize(cr, 1<<16), ctx: ctx}
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(r.r, magic); err != nil {
		return nil, nil, fmt.Errorf("reading magic: %w", classifyRead(err))
	}
	var sectioned bool
	switch string(magic) {
	case binaryMagic:
	case binaryMagicV2:
		sectioned = true
	default:
		return nil, nil, fmt.Errorf("%w: %q", ErrBadMagic, magic)
	}
	app, syms, stacks, stackIDs, nRanks, err := decodeHeader(r)
	if err != nil {
		return nil, nil, err
	}
	t, err := NewChecked(app, nRanks, syms, stacks)
	if err != nil {
		return nil, nil, err
	}
	if sectioned {
		return decodeRankSections(ctx, r, t, stackIDs, opt, finish)
	}
	// Legacy stream: rank bodies are back to back with no framing, so the
	// only possible decode order is sequential.
	danglingStacks := 0
	for rank := 0; rank < nRanks && r.err == nil; rank++ {
		danglingStacks += decodeRankBody(r, t.Ranks[rank], rank, stackIDs, opt)
	}
	return sealDecode(t, r.err, danglingStacks, opt, finish)
}

// decodeHeader reads everything up to the rank sections: app name, symbol
// table, stack table, and the rank count. Header damage is never
// salvageable — the tables interpret every record downstream.
func decodeHeader(r *reader) (app string, syms *callstack.SymbolTable, stacks *callstack.Interner, stackIDs []callstack.StackID, nRanks int, err error) {
	app = r.str()
	syms = callstack.NewSymbolTable()
	nRoutines := r.count("routine", maxTableCount)
	for i := 0; i < nRoutines && r.poll(); i++ {
		rt := callstack.Routine{
			Name:      r.str(),
			File:      r.str(),
			StartLine: int(r.uvarint()),
			EndLine:   int(r.uvarint()),
		}
		if r.err == nil {
			// Define panics on malformed routines (a programming error
			// in-process); from the wire, malformation is corruption.
			if cerr := rt.Check(); cerr != nil {
				r.err = fmt.Errorf("%w: routine %d: %v", ErrCorrupt, i, cerr)
				break
			}
			syms.Define(rt)
		}
	}
	stacks = callstack.NewInterner()
	nStacks := r.count("stack", maxTableCount)
	stackIDs = make([]callstack.StackID, 0, min(nStacks, 1<<16))
	for i := 0; i < nStacks && r.poll(); i++ {
		nf := r.count("frame", maxStackFrames)
		if r.err != nil {
			break
		}
		st := make(callstack.Stack, 0, min(nf, 64))
		for j := 0; j < nf && r.err == nil; j++ {
			st = append(st, callstack.Frame{
				Routine: callstack.RoutineID(r.varint()),
				Line:    int(r.uvarint()),
			})
		}
		if r.err != nil {
			break
		}
		stackIDs = append(stackIDs, stacks.Intern(st))
	}
	nRanks = r.count("rank", maxTableCount)
	if r.err != nil {
		return app, syms, stacks, stackIDs, 0, classifyRead(r.err)
	}
	if nRanks == 0 {
		return app, syms, stacks, stackIDs, 0, fmt.Errorf("%w: decoded trace has no ranks", ErrNoRanks)
	}
	return app, syms, stacks, stackIDs, nRanks, nil
}

// decodeEvent reads one event record. ok is false on a reader error; the
// partially-read record must then be discarded by the caller.
func decodeEvent(r *reader, rank int32, prev *sim.Time) (Event, bool) {
	*prev += sim.Time(r.uvarint())
	e := Event{
		Time:     *prev,
		Rank:     rank,
		Type:     EventType(r.uvarint()),
		Value:    r.varint(),
		Group:    uint8(r.uvarint()),
		Counters: r.counterSet(),
	}
	return e, r.err == nil
}

// decodeSample reads one sample record, mapping its stack reference through
// stackIDs. A dangling reference is an error in strict mode and is cleared
// (counted via dangling) in salvage mode. ok is false on a reader error.
func decodeSample(r *reader, rank int32, prev *sim.Time, stackIDs []callstack.StackID, salvage bool, dangling *int) (Sample, bool) {
	*prev += sim.Time(r.uvarint())
	sid := callstack.StackID(r.varint())
	if sid != callstack.NoStack && r.err == nil {
		if sid < 0 || int(sid) >= len(stackIDs) {
			if !salvage {
				r.err = fmt.Errorf("%w: sample references stack %d of %d", ErrCorrupt, sid, len(stackIDs))
				return Sample{}, false
			}
			*dangling++
			sid = callstack.NoStack
		} else {
			sid = stackIDs[sid]
		}
	}
	s := Sample{
		Time:     *prev,
		Rank:     rank,
		Stack:    sid,
		Group:    uint8(r.uvarint()),
		Counters: r.counterSet(),
	}
	return s, r.err == nil
}

// decodeRankBody decodes one rank's events and samples from r into rd and
// returns how many dangling stack references it cleared (salvage mode only;
// strict mode records them as r.err instead). On error the records decoded
// before the damage stay in rd — that prefix is exactly what salvage keeps.
func decodeRankBody(r *reader, rd *RankData, rank int, stackIDs []callstack.StackID, opt DecodeOptions) (danglingStacks int) {
	nev := r.count("event", maxDecodeCount)
	rd.Events = make([]Event, 0, min(nev, 1<<20))
	var prev sim.Time
	for i := 0; i < nev && r.poll(); i++ {
		e, ok := decodeEvent(r, int32(rank), &prev)
		if !ok {
			break // discard the partially-read record
		}
		rd.Events = append(rd.Events, e)
	}
	nsmp := r.count("sample", maxDecodeCount)
	rd.Samples = make([]Sample, 0, min(nsmp, 1<<20))
	prev = 0
	for i := 0; i < nsmp && r.poll(); i++ {
		s, ok := decodeSample(r, int32(rank), &prev, stackIDs, opt.Salvage, &danglingStacks)
		if !ok {
			break
		}
		rd.Samples = append(rd.Samples, s)
	}
	return danglingStacks
}

// decodeRankSections is the "PFT2" record path: slice the length-prefixed
// sections off the stream in rank order (the stream is one pipe — I/O stays
// sequential), then decode them concurrently, each worker writing only its
// claimed rank's slot. Slot indexing plus a fixed error-precedence scan make
// the result byte-identical to a serial decode.
func decodeRankSections(ctx context.Context, r *reader, t *Trace, stackIDs []callstack.StackID, opt DecodeOptions, finish func(*Trace, *SalvageReport)) (*Trace, *SalvageReport, error) {
	nRanks := len(t.Ranks)
	bufs := make([]*bytes.Buffer, nRanks)
	defer func() {
		for _, b := range bufs {
			putSectionBuf(b)
		}
	}()
	var streamErr error
	loaded := 0 // sections actually sliced off the stream (prefix of ranks)
	for rank := 0; rank < nRanks; rank++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		n := r.uvarint()
		if r.err != nil {
			streamErr = r.err
			break
		}
		if n > maxSectionBytes {
			streamErr = fmt.Errorf("%w: rank %d section claims %d bytes, exceeds sanity limit %d",
				ErrCorrupt, rank, n, uint64(maxSectionBytes))
			break
		}
		buf := getSectionBuf()
		bufs[rank] = buf
		// Grow only as bytes actually arrive: a hostile length prefix must
		// not turn into an up-front allocation.
		m, err := buf.ReadFrom(io.LimitReader(r.r, int64(n)))
		loaded = rank + 1
		if err != nil {
			streamErr = err
			break
		}
		if m < int64(n) {
			// The stream ended inside this section; its prefix still
			// decodes below, which is what salvage keeps.
			streamErr = io.ErrUnexpectedEOF
			break
		}
	}
	workers := par.N(opt.Parallelism)
	if workers > loaded {
		workers = loaded
	}
	// One child span per worker, not per rank: a million-rank trace must
	// not allocate a million spans. Each worker owns its span exclusively.
	wctxs := make([]context.Context, max(workers, 1))
	wspans := make([]*obs.Span, max(workers, 1))
	for w := range wctxs {
		wctxs[w], wspans[w] = obs.StartSpan(ctx, fmt.Sprintf("decode_worker_%d", w))
	}
	rankErrs := make([]error, nRanks)
	rankDangling := make([]int, nRanks)
	par.ForEach(workers, loaded, func(worker, rank int) {
		br := bytes.NewReader(bufs[rank].Bytes())
		rr := &reader{r: br, ctx: wctxs[worker]}
		rankDangling[rank] = decodeRankBody(rr, t.Ranks[rank], rank, stackIDs, opt)
		if rr.err == nil && br.Len() > 0 {
			// The section framing promised more bytes than the records
			// consumed: the length prefix and the content disagree.
			rr.err = fmt.Errorf("%w: rank %d section carries %d trailing bytes",
				ErrCorrupt, rank, br.Len())
		}
		rankErrs[rank] = rr.err
		wspans[worker].AddInt("ranks", 1)
		wspans[worker].AddInt("records", int64(len(t.Ranks[rank].Events)+len(t.Ranks[rank].Samples)))
	})
	for _, s := range wspans {
		s.End()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	// Fixed error precedence keeps strict-mode failures deterministic:
	// the lowest-rank section error wins, then any stream-level one.
	decodeErr := streamErr
	for rank := 0; rank < loaded; rank++ {
		if rankErrs[rank] != nil {
			decodeErr = rankErrs[rank]
			break
		}
	}
	danglingStacks := 0
	for _, d := range rankDangling {
		danglingStacks += d
	}
	return sealDecode(t, decodeErr, danglingStacks, opt, finish)
}

// sealDecode finishes a decode whose records are in place: strict mode
// validates and returns, salvage mode repairs what was recovered and
// reports. decodeErr is the first damage hit while decoding records (nil
// for a clean stream).
func sealDecode(t *Trace, decodeErr error, danglingStacks int, opt DecodeOptions, finish func(*Trace, *SalvageReport)) (*Trace, *SalvageReport, error) {
	if decodeErr != nil && (!opt.Salvage ||
		errors.Is(decodeErr, context.Canceled) || errors.Is(decodeErr, context.DeadlineExceeded)) {
		return nil, nil, classifyRead(decodeErr)
	}
	if !opt.Salvage {
		if err := t.Validate(); err != nil {
			return nil, nil, fmt.Errorf("decoded trace invalid: %w", err)
		}
		finish(t, nil)
		return t, nil, nil
	}

	// Salvage path: keep what was recovered, repair it, and report.
	report := &SalvageReport{Err: classifyRead(decodeErr)}
	if danglingStacks > 0 {
		report.Problems = append(report.Problems, Problem{
			Rank: -1, Kind: ProblemDanglingStack, Count: danglingStacks,
			Detail: "samples referencing undefined stacks cleared",
		})
	}
	report.Problems = append(report.Problems, t.Sanitize()...)
	for _, rd := range t.Ranks {
		report.Events += len(rd.Events)
		report.Samples += len(rd.Samples)
	}
	if report.Err != nil {
		for _, rd := range t.Ranks {
			if len(rd.Events) == 0 && len(rd.Samples) == 0 {
				report.RanksLost++
			}
		}
	}
	if report.Err != nil && report.Events == 0 && report.Samples == 0 {
		// A record-free trace is only a failure when damage ate the records;
		// a file that legitimately encodes no records decodes fine strictly
		// and must decode fine here too.
		return nil, nil, fmt.Errorf("nothing salvageable: %w", report.Err)
	}
	if err := t.Validate(); err != nil {
		return nil, nil, fmt.Errorf("salvaged trace still invalid: %w", err)
	}
	finish(t, report)
	return t, report, nil
}

// countingReader counts the bytes pulled through an io.Reader so the decode
// span can report throughput. Single-goroutine by construction: both decoders
// read sequentially from the wrapped source.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// startDecodePass counts one decoder invocation and returns the closure a
// successful decode calls to land its volume on the caller's telemetry —
// record counts and throughput as span attributes and run-wide series, plus
// the decode latency histogram. cr may be nil (no byte accounting). All of
// it is inert when the context carries no telemetry.
func startDecodePass(ctx context.Context, span *obs.Span, format string, opt DecodeOptions, cr *countingReader) func(*Trace, *SalvageReport) {
	mode := "strict"
	if opt.Salvage {
		mode = "salvage"
	}
	span.SetAttr("format", format)
	span.SetAttr("mode", mode)
	reg := obs.Metrics(ctx)
	reg.Counter(obs.MetricDecodePasses, "Decoder passes run, by format and mode.",
		obs.Label{K: "format", V: format}, obs.Label{K: "mode", V: mode}).Inc()
	start := time.Now()
	return func(t *Trace, report *SalvageReport) {
		elapsed := time.Since(start)
		reg.Histogram(obs.MetricDecodeDuration, "Trace decode duration in seconds.",
			obs.DurationBuckets(), obs.Label{K: "format", V: format}).
			Observe(elapsed.Seconds())
		events, samples := 0, 0
		for _, rd := range t.Ranks {
			events += len(rd.Events)
			samples += len(rd.Samples)
		}
		span.SetAttr("ranks", len(t.Ranks))
		span.SetAttr("events", events)
		span.SetAttr("samples", samples)
		if sec := elapsed.Seconds(); sec > 0 {
			rps := float64(events+samples) / sec
			span.SetAttr("records_per_sec", rps)
			reg.Gauge(obs.MetricStageThroughput,
				"Records processed per second by the last pass of each stage.",
				obs.Label{K: "stage", V: "decode"}).Set(rps)
			if cr != nil && cr.n > 0 {
				span.SetAttr("bytes", cr.n)
				span.SetAttr("bytes_per_sec", float64(cr.n)/sec)
			}
		}
		reg.Counter(obs.MetricRecordsDecoded, "Trace records (events and samples) decoded.").
			Add(int64(events + samples))
		if report == nil {
			return
		}
		repairs := int64(0)
		for _, p := range report.Problems {
			repairs += int64(p.Count)
		}
		if repairs > 0 {
			span.SetAttr("salvage_repairs", repairs)
			reg.Counter(obs.MetricSalvageRepairs,
				"Records repaired or cleared by salvage decoding.").Add(repairs)
		}
	}
}
