package trace

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"phasefold/internal/callstack"
	"phasefold/internal/counters"
	"phasefold/internal/sim"
)

// randomTrace builds a pseudo-random but well-formed trace for roundtrip
// testing.
func randomTrace(t *testing.T, seed uint64, ranks, iters int) *Trace {
	t.Helper()
	rng := sim.NewRNG(seed)
	tr := New("random", ranks, nil, nil)
	rids := make([]callstack.RoutineID, 3)
	for i := range rids {
		rids[i] = tr.Symbols.Define(callstack.Routine{
			Name: string(rune('a'+i)) + ".fn", File: "f.c", StartLine: 1 + i*10, EndLine: 9 + i*10,
		})
	}
	for rank := 0; rank < ranks; rank++ {
		now := sim.Time(0)
		step := func() sim.Time {
			now += sim.Time(1 + rng.Intn(1000))
			return now
		}
		ctr := func() counters.Set {
			s := counters.AllMissing()
			s[counters.Instructions] = int64(now)
			if rng.Float64() < 0.8 {
				s[counters.Cycles] = 2 * int64(now)
			}
			return s
		}
		for it := 0; it < iters; it++ {
			tr.AddEvent(Event{Time: step(), Rank: int32(rank), Type: IterBegin, Value: int64(it), Counters: ctr(), Group: uint8(it % 4)})
			tr.AddEvent(Event{Time: step(), Rank: int32(rank), Type: RegionEnter, Value: 1, Counters: ctr()})
			// A couple of samples inside the region.
			for s := 0; s < 2; s++ {
				stack := callstack.NoStack
				if rng.Float64() < 0.7 {
					stack = tr.Stacks.Intern(callstack.Stack{
						{Routine: rids[rng.Intn(3)], Line: rng.Intn(100)},
						{Routine: rids[rng.Intn(3)], Line: rng.Intn(100)},
					})
				}
				tr.AddSample(Sample{Time: step(), Rank: int32(rank), Counters: ctr(), Stack: stack, Group: uint8(it % 4)})
			}
			tr.AddEvent(Event{Time: step(), Rank: int32(rank), Type: RegionExit, Value: 1, Counters: ctr()})
			tr.AddEvent(Event{Time: step(), Rank: int32(rank), Type: IterEnd, Value: int64(it), Counters: ctr()})
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("random trace invalid: %v", err)
	}
	return tr
}

// equalTraces compares two traces record-by-record, resolving stack ids
// through each trace's own interner (ids may differ across encode/decode).
func equalTraces(t *testing.T, a, b *Trace) {
	t.Helper()
	if a.AppName != b.AppName {
		t.Fatalf("app name %q vs %q", a.AppName, b.AppName)
	}
	if a.NumRanks() != b.NumRanks() {
		t.Fatalf("rank count %d vs %d", a.NumRanks(), b.NumRanks())
	}
	if !reflect.DeepEqual(a.Symbols.Routines(), b.Symbols.Routines()) {
		t.Fatal("symbol tables differ")
	}
	for r := 0; r < a.NumRanks(); r++ {
		ra, rb := a.Ranks[r], b.Ranks[r]
		if !reflect.DeepEqual(ra.Events, rb.Events) {
			t.Fatalf("rank %d events differ", r)
		}
		if len(ra.Samples) != len(rb.Samples) {
			t.Fatalf("rank %d sample count %d vs %d", r, len(ra.Samples), len(rb.Samples))
		}
		for i := range ra.Samples {
			sa, sb := ra.Samples[i], rb.Samples[i]
			if sa.Time != sb.Time || sa.Counters != sb.Counters || sa.Group != sb.Group {
				t.Fatalf("rank %d sample %d scalar fields differ", r, i)
			}
			ka, okA := a.Stacks.Get(sa.Stack)
			kb, okB := b.Stacks.Get(sb.Stack)
			if okA != okB || (okA && !ka.Equal(kb)) {
				t.Fatalf("rank %d sample %d stacks differ", r, i)
			}
		}
	}
}

func TestBinaryRoundtrip(t *testing.T) {
	orig := randomTrace(t, 1, 3, 5)
	var buf bytes.Buffer
	if err := Encode(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, _, err := Decode(context.Background(), &buf, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	equalTraces(t, orig, got)
}

func TestBinaryRoundtripManySeeds(t *testing.T) {
	for seed := uint64(2); seed < 12; seed++ {
		orig := randomTrace(t, seed, 2, 3)
		var buf bytes.Buffer
		if err := Encode(&buf, orig); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, _, err := Decode(context.Background(), &buf, DecodeOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		equalTraces(t, orig, got)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	if _, _, err := Decode(context.Background(), strings.NewReader("NOPE...."), DecodeOptions{}); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	orig := randomTrace(t, 5, 1, 2)
	var buf bytes.Buffer
	if err := Encode(&buf, orig); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{5, len(raw) / 2, len(raw) - 1} {
		if _, _, err := Decode(context.Background(), bytes.NewReader(raw[:cut]), DecodeOptions{}); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestTextRoundtrip(t *testing.T) {
	orig := randomTrace(t, 7, 2, 4)
	var buf bytes.Buffer
	if err := EncodeText(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeText(context.Background(), &buf, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	equalTraces(t, orig, got)
}

func TestTextFormatIsLineOriented(t *testing.T) {
	orig := buildTestTrace(t)
	var buf bytes.Buffer
	if err := EncodeText(&buf, orig); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.HasPrefix(text, "#PFTEXT1 unit\n") {
		t.Fatalf("missing header: %q", text[:40])
	}
	if !strings.Contains(text, "E 0 ") || !strings.Contains(text, "S 0 ") {
		t.Fatal("missing event/sample records")
	}
}

func TestDecodeTextSkipsCommentsAndBlanks(t *testing.T) {
	in := "#PFTEXT1 app\n\n# a comment\nE 0 10 iter_begin 0 0 -\nE 0 20 iter_end 0 0 -\n"
	tr, _, err := DecodeText(context.Background(), strings.NewReader(in), DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumEvents() != 2 {
		t.Fatalf("NumEvents = %d, want 2", tr.NumEvents())
	}
}

func TestDecodeTextRejectsGarbage(t *testing.T) {
	cases := []string{
		"",                                       // empty
		"WRONG header\n",                         // bad magic
		"#PFTEXT1 app\nZ what is this\n",         // unknown record
		"#PFTEXT1 app\nE 0 10 nope 0 0 -",        // unknown event type
		"#PFTEXT1 app\nS 0 10 5 0 -\n",           // dangling stack reference
		"#PFTEXT1 app\nE 0 x iter_begin 0 0 -\n", // bad number
	}
	for _, in := range cases {
		if _, _, err := DecodeText(context.Background(), strings.NewReader(in), DecodeOptions{}); err == nil {
			t.Errorf("garbage accepted: %q", in)
		}
	}
}

func TestCounterFieldFormat(t *testing.T) {
	s := counters.AllMissing()
	if got := formatCounters(s); got != "-" {
		t.Fatalf("all-missing renders %q", got)
	}
	s[counters.Instructions] = 5
	s[counters.FPOps] = -3 // negative values are legal (deltas)
	field := formatCounters(s)
	back, err := parseCounters(field)
	if err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("counter field roundtrip %q -> %v, want %v", field, back, s)
	}
}

func TestParseCountersRejects(t *testing.T) {
	for _, in := range []string{"x", "1", "99=5", "1=z", "=4"} {
		if _, err := parseCounters(in); err == nil {
			t.Errorf("parseCounters accepted %q", in)
		}
	}
}
