package trace

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"phasefold/internal/exec"
)

// These tests pin the "PFT2" sectioned container: parallel decode must be
// indistinguishable from serial, the legacy "PFT1" layout must keep
// decoding, and section framing must fail loudly when it lies.

// encodeV1 renders t in the legacy "PFT1" layout — same header, rank bodies
// concatenated with no length prefixes — so the single-goroutine decode path
// stays covered even as tools only ever write "PFT2" now.
func encodeV1(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(binaryMagic)
	bw := &writer{w: &buf}
	encodeHeader(bw, tr)
	for _, rd := range tr.Ranks {
		sec := encodeRankSection(rd)
		bw.bytes(sec.Bytes())
		putSectionBuf(sec)
	}
	if bw.err != nil {
		t.Fatalf("encodeV1: %v", bw.err)
	}
	return buf.Bytes()
}

func TestDecodeParallelMatchesSerial(t *testing.T) {
	tr := randomTrace(t, 7, 6, 40)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, workers := range []int{1, 2, 3, 8} {
		got, _, err := Decode(context.Background(), bytes.NewReader(raw), DecodeOptions{Exec: exec.Exec{Parallelism: workers}})
		if err != nil {
			t.Fatalf("parallelism %d: %v", workers, err)
		}
		equalTraces(t, tr, got)
	}
}

func TestDecodeLegacyV1(t *testing.T) {
	tr := randomTrace(t, 11, 3, 20)
	raw := encodeV1(t, tr)
	got, _, err := Decode(context.Background(), bytes.NewReader(raw), DecodeOptions{Exec: exec.Exec{Parallelism: 4}})
	if err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	equalTraces(t, tr, got)
}

// A byte of damage inside one rank's section must not take down the other
// ranks in salvage mode: section framing isolates the blast radius, which
// the unframed v1 stream could never do.
func TestSectionDamageIsolatedPerRank(t *testing.T) {
	tr := randomTrace(t, 3, 2, 30)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The stream ends with: uvarint(len0) sec0 uvarint(len1) sec1. Setting
	// the continuation bit on sec0's final byte makes its last varint run
	// off the section end — guaranteed damage confined to rank 0.
	sec1 := encodeRankSection(tr.Ranks[1])
	l1 := sec1.Len()
	putSectionBuf(sec1)
	prefix1 := uvarintLen(uint64(l1))
	sec0End := len(raw) - l1 - prefix1
	raw[sec0End-1] = 0xFF

	if _, _, err := Decode(context.Background(), bytes.NewReader(raw), DecodeOptions{Exec: exec.Exec{Parallelism: 4}}); err == nil {
		t.Fatal("strict decode accepted a damaged section")
	} else if !errors.Is(err, ErrFormat) {
		t.Fatalf("damage error %v does not match ErrFormat", err)
	}

	got, rep, err := Decode(context.Background(), bytes.NewReader(raw),
		DecodeOptions{Salvage: true, Exec: exec.Exec{Parallelism: 4}})
	if err != nil {
		t.Fatalf("salvage: %v", err)
	}
	if rep == nil || rep.Err == nil {
		t.Fatal("salvage did not report the damage")
	}
	if len(got.Ranks[1].Events) != len(tr.Ranks[1].Events) ||
		len(got.Ranks[1].Samples) != len(tr.Ranks[1].Samples) {
		t.Fatalf("rank 1 lost records to rank 0's damage: %d/%d events, %d/%d samples",
			len(got.Ranks[1].Events), len(tr.Ranks[1].Events),
			len(got.Ranks[1].Samples), len(tr.Ranks[1].Samples))
	}
	total := len(got.Ranks[0].Events) + len(got.Ranks[0].Samples)
	want := len(tr.Ranks[0].Events) + len(tr.Ranks[0].Samples)
	if total >= want {
		t.Fatalf("rank 0 kept %d of %d records despite damage", total, want)
	}
}

// Truncating the stream mid-section must salvage every fully-loaded rank
// plus the damaged rank's decoded prefix, and fail strict decode.
func TestSectionTruncationSalvage(t *testing.T) {
	tr := randomTrace(t, 5, 4, 25)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	cut := raw[:len(raw)*2/3]
	if _, _, err := Decode(context.Background(), bytes.NewReader(cut), DecodeOptions{Exec: exec.Exec{Parallelism: 4}}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated stream: got %v, want ErrTruncated", err)
	}
	got, rep, err := Decode(context.Background(), bytes.NewReader(cut),
		DecodeOptions{Salvage: true, Exec: exec.Exec{Parallelism: 4}})
	if err != nil {
		t.Fatalf("salvage of truncated stream: %v", err)
	}
	if rep.Err == nil || rep.RanksLost == 0 {
		t.Fatalf("report did not note the truncation: %+v", rep)
	}
	if len(got.Ranks[0].Events) == 0 {
		t.Fatal("salvage lost rank 0 to tail truncation")
	}
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
