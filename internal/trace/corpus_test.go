package trace

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// corpusEntries loads the checked-in seed corpus for a fuzz target. Each file
// is in the `go test fuzz v1` format: a version line followed by one Go
// literal per fuzz argument.
func corpusEntries(t *testing.T, target string) map[string][]byte {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", target)
	names, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		t.Skipf("no corpus at %s", dir)
	}
	if err != nil {
		t.Fatal(err)
	}
	entries := make(map[string][]byte, len(names))
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		path := filepath.Join(dir, de.Name())
		data, err := parseCorpusFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		entries[de.Name()] = data
	}
	if len(entries) == 0 {
		t.Fatalf("corpus dir %s holds no entries", dir)
	}
	return entries
}

func parseCorpusFile(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "go test fuzz") {
		return nil, fmt.Errorf("not a go fuzz corpus file")
	}
	// The decode targets take a single []byte (or string) argument.
	lit := strings.TrimSpace(lines[1])
	open := strings.Index(lit, "(")
	if open < 0 || !strings.HasSuffix(lit, ")") {
		return nil, fmt.Errorf("malformed corpus literal %q", lit)
	}
	quoted := lit[open+1 : len(lit)-1]
	s, err := strconv.Unquote(quoted)
	if err != nil {
		return nil, fmt.Errorf("unquoting corpus literal %q: %w", quoted, err)
	}
	return []byte(s), nil
}

// TestDecodeCorpusReplay replays the checked-in fuzz findings on every run —
// including -short, where `go test` does not execute fuzz seed corpora. Each
// past crasher must stay fixed: neither strict nor salvage decode may panic,
// whatever they accept must validate, and salvage must be at least as
// permissive as strict.
func TestDecodeCorpusReplay(t *testing.T) {
	for name, data := range corpusEntries(t, "FuzzDecode") {
		t.Run(name, func(t *testing.T) {
			tr, _, err := Decode(context.Background(), bytes.NewReader(data), DecodeOptions{})
			if err == nil {
				if verr := tr.Validate(); verr != nil {
					t.Fatalf("strict decode accepted an invalid trace: %v", verr)
				}
			}
			str, rep, serr := Decode(context.Background(), bytes.NewReader(data), DecodeOptions{Salvage: true})
			if serr == nil {
				if verr := str.Validate(); verr != nil {
					t.Fatalf("salvaged trace invalid: %v", verr)
				}
				if rep == nil {
					t.Fatal("salvage succeeded without a report")
				}
			}
			if err == nil && serr != nil {
				t.Fatalf("strict accepted what salvage rejected: %v", serr)
			}
		})
	}
}
