package trace

import (
	"context"
	"errors"
	"io"
)

// Structured error taxonomy of the trace container. Decode, DecodeText,
// Merge, and Validate wrap these sentinels so callers can dispatch with
// errors.Is instead of string matching — the CLIs map them to exit codes,
// and the degraded-mode analyzer decides per sentinel whether a rank is
// recoverable.

// ErrFormat is the umbrella sentinel for every way an input can fail to be
// a usable trace: errors.Is(err, ErrFormat) matches bad magic, truncation,
// corruption, missing ranks, and invariant violations alike, so callers
// that only care about "the input, not my code or my deadline" need one
// check instead of five.
var ErrFormat = errors.New("trace: malformed input")

// formatError is a sentinel that additionally matches ErrFormat under
// errors.Is while keeping its own message (no "malformed input:" prefix on
// every rejection).
type formatError struct{ msg string }

func (e *formatError) Error() string { return e.msg }

func (e *formatError) Is(target error) bool { return target == ErrFormat }

var (
	// ErrBadMagic marks input that is not a trace container at all.
	ErrBadMagic error = &formatError{"trace: bad magic"}
	// ErrTruncated marks a well-formed stream that ends mid-record.
	ErrTruncated error = &formatError{"trace: truncated input"}
	// ErrCorrupt marks a stream whose content violates the format
	// (impossible counts, unresolvable references, malformed records).
	ErrCorrupt error = &formatError{"trace: corrupt input"}
	// ErrNoRanks marks a decoded container carrying no process data.
	ErrNoRanks error = &formatError{"trace: no ranks"}
	// ErrInvalid marks a structurally decodable trace that violates the
	// container invariants (record order, nesting, references).
	ErrInvalid error = &formatError{"trace: invalid structure"}
	// ErrMergeMismatch marks merge inputs that cannot be combined
	// (different symbol tables, colliding ranks, nothing to merge). It is
	// a usage error, not an input-format one, so it does not match
	// ErrFormat.
	ErrMergeMismatch = errors.New("trace: merge mismatch")
)

// classifyRead maps a low-level read error onto the taxonomy: EOF variants
// mean the stream stopped early (truncation), anything else means the bytes
// could not be interpreted (corruption). Errors already carrying a sentinel
// pass through unchanged.
func classifyRead(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrTruncated) || errors.Is(err, ErrCorrupt) ||
		errors.Is(err, ErrBadMagic) || errors.Is(err, ErrNoRanks) || errors.Is(err, ErrInvalid) {
		return err
	}
	// Cancellation is the caller's deadline firing, not a statement about the
	// input; it must stay matchable as context.Canceled/DeadlineExceeded.
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return errors.Join(ErrTruncated, err)
	}
	return errors.Join(ErrCorrupt, err)
}
