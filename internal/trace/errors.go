package trace

import (
	"context"
	"errors"
	"io"
)

// Structured error taxonomy of the trace container. Decode, DecodeText,
// Merge, and Validate wrap these sentinels so callers can dispatch with
// errors.Is instead of string matching — foldctl maps them to exit codes,
// and the degraded-mode analyzer decides per sentinel whether a rank is
// recoverable.
var (
	// ErrBadMagic marks input that is not a trace container at all.
	ErrBadMagic = errors.New("trace: bad magic")
	// ErrTruncated marks a well-formed stream that ends mid-record.
	ErrTruncated = errors.New("trace: truncated input")
	// ErrCorrupt marks a stream whose content violates the format
	// (impossible counts, unresolvable references, malformed records).
	ErrCorrupt = errors.New("trace: corrupt input")
	// ErrNoRanks marks a decoded container carrying no process data.
	ErrNoRanks = errors.New("trace: no ranks")
	// ErrInvalid marks a structurally decodable trace that violates the
	// container invariants (record order, nesting, references).
	ErrInvalid = errors.New("trace: invalid structure")
	// ErrMergeMismatch marks merge inputs that cannot be combined
	// (different symbol tables, colliding ranks, nothing to merge).
	ErrMergeMismatch = errors.New("trace: merge mismatch")
)

// classifyRead maps a low-level read error onto the taxonomy: EOF variants
// mean the stream stopped early (truncation), anything else means the bytes
// could not be interpreted (corruption). Errors already carrying a sentinel
// pass through unchanged.
func classifyRead(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrTruncated) || errors.Is(err, ErrCorrupt) ||
		errors.Is(err, ErrBadMagic) || errors.Is(err, ErrNoRanks) || errors.Is(err, ErrInvalid) {
		return err
	}
	// Cancellation is the caller's deadline firing, not a statement about the
	// input; it must stay matchable as context.Canceled/DeadlineExceeded.
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return errors.Join(ErrTruncated, err)
	}
	return errors.Join(ErrCorrupt, err)
}
