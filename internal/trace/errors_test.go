package trace

import (
	"errors"
	"strings"
	"testing"

	"phasefold/internal/callstack"
	"phasefold/internal/counters"
	"phasefold/internal/sim"
)

// These tests pin down the error taxonomy: every rejection must wrap the
// right package sentinel so callers can dispatch with errors.Is, and the
// less-traveled Validate branches (comm nesting, dangling stacks, counter
// monotonicity) must actually fire.

func TestMergeErrorsWrapSentinel(t *testing.T) {
	syms := callstack.NewSymbolTable()
	stacks := callstack.NewInterner()
	mk := func(rank int32) *Trace {
		tr := New("p", int(rank)+1, syms, stacks)
		tr.Ranks[rank].Events = append(tr.Ranks[rank].Events,
			Event{Time: 1, Rank: rank, Type: IterBegin, Counters: counters.AllMissing()})
		return tr
	}
	empty := New("e", 1, syms, stacks)
	negRank := New("n", 1, syms, stacks)
	negRank.Ranks[0].Rank = -3
	negRank.Ranks[0].Events = append(negRank.Ranks[0].Events,
		Event{Time: 1, Rank: -3, Type: IterBegin, Counters: counters.AllMissing()})
	foreign := New("f", 1, nil, nil)
	foreign.AddEvent(Event{Time: 1, Type: IterBegin, Counters: counters.AllMissing()})

	cases := []struct {
		name  string
		parts []*Trace
	}{
		{"no parts", nil},
		{"nil part", []*Trace{mk(0), nil}},
		{"all empty", []*Trace{empty}},
		{"negative rank", []*Trace{negRank}},
		{"foreign tables", []*Trace{mk(0), foreign}},
		{"rank collision", []*Trace{mk(0), mk(0)}},
	}
	for _, tc := range cases {
		_, err := Merge("w", tc.parts...)
		if err == nil {
			t.Errorf("%s: merge accepted", tc.name)
			continue
		}
		if !errors.Is(err, ErrMergeMismatch) {
			t.Errorf("%s: error %v does not wrap ErrMergeMismatch", tc.name, err)
		}
	}
}

func TestValidateErrorsWrapSentinel(t *testing.T) {
	damage := []struct {
		name string
		want string
		make func() *Trace
	}{
		{"unclosed comm", "unclosed comms", func() *Trace {
			tr := New("x", 1, nil, nil)
			tr.AddEvent(Event{Time: 1, Type: CommEnter, Counters: counters.AllMissing()})
			return tr
		}},
		{"comm exit without enter", "comm exit without enter", func() *Trace {
			tr := New("x", 1, nil, nil)
			tr.AddEvent(Event{Time: 1, Type: CommExit, Counters: counters.AllMissing()})
			return tr
		}},
		{"dangling stack", "unknown stack", func() *Trace {
			tr := New("x", 1, nil, nil)
			tr.AddSample(Sample{Time: 1, Stack: 7, Counters: counters.AllMissing()})
			return tr
		}},
		{"nil rank slot", "rank 1 missing", func() *Trace {
			tr := New("x", 2, nil, nil)
			tr.Ranks[1] = nil
			return tr
		}},
		{"invalid event type", "invalid type", func() *Trace {
			tr := New("x", 1, nil, nil)
			tr.Ranks[0].Events = append(tr.Ranks[0].Events,
				Event{Time: 1, Type: EventType(99), Counters: counters.AllMissing()})
			return tr
		}},
		{"negative counter", "negative", func() *Trace {
			tr := New("x", 1, nil, nil)
			c := counters.AllMissing()
			c[counters.Instructions] = -5
			tr.AddSample(Sample{Time: 1, Stack: callstack.NoStack, Counters: c})
			return tr
		}},
		{"counter regression", "regresses", func() *Trace {
			tr := New("x", 1, nil, nil)
			hi := counters.AllMissing()
			hi[counters.Instructions] = 100
			lo := counters.AllMissing()
			lo[counters.Instructions] = 40
			tr.AddSample(Sample{Time: 1, Stack: callstack.NoStack, Counters: hi})
			tr.AddSample(Sample{Time: 2, Stack: callstack.NoStack, Counters: lo})
			return tr
		}},
	}
	for _, tc := range damage {
		err := tc.make().Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted", tc.name)
			continue
		}
		if !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: error %v does not wrap ErrInvalid", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateRankOutOfRange(t *testing.T) {
	tr := New("x", 1, nil, nil)
	for _, r := range []int{-1, 1, 99} {
		if err := tr.ValidateRank(r); !errors.Is(err, ErrInvalid) {
			t.Errorf("ValidateRank(%d) = %v, want ErrInvalid", r, err)
		}
	}
}

// Counter regressions spanning the event/sample boundary must be caught: the
// walk is over the merged timeline, not per stream.
func TestValidateCountersAcrossStreams(t *testing.T) {
	tr := New("x", 1, nil, nil)
	hi := counters.AllMissing()
	hi[counters.Instructions] = 100
	lo := counters.AllMissing()
	lo[counters.Instructions] = 40
	tr.AddSample(Sample{Time: 1, Stack: callstack.NoStack, Counters: hi})
	tr.AddEvent(Event{Time: 2, Type: IterBegin, Counters: lo})
	if err := tr.Validate(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("cross-stream counter regression not caught: %v", err)
	}
	// And the repair pass must fix exactly that.
	if probs := tr.Sanitize(); len(probs) == 0 {
		t.Fatal("Sanitize reported no repairs")
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace still invalid after Sanitize: %v", err)
	}
}

// Sanitize must prefer masking the outlier, not everything after it: one
// garbled huge value in an otherwise monotone series loses one point.
func TestSanitizeMasksOutlierNotTail(t *testing.T) {
	tr := New("x", 1, nil, nil)
	vals := []int64{10, 20, 1 << 60, 30, 40, 50}
	for i, v := range vals {
		c := counters.AllMissing()
		c[counters.Instructions] = v
		tr.AddSample(Sample{Time: sim.Time(i + 1), Stack: callstack.NoStack, Counters: c})
	}
	tr.Sanitize()
	masked := 0
	for _, s := range tr.Ranks[0].Samples {
		if s.Counters[counters.Instructions] == counters.Missing {
			masked++
		}
	}
	if masked != 1 {
		t.Fatalf("masked %d values, want exactly the one outlier", masked)
	}
	if tr.Ranks[0].Samples[2].Counters[counters.Instructions] != counters.Missing {
		t.Fatal("the outlier itself survived")
	}
}
