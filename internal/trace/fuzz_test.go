package trace

import (
	"bytes"
	"context"
	"testing"

	"phasefold/internal/callstack"
	"phasefold/internal/counters"
)

// fuzzSeedTrace builds a small real trace to seed the corpus with valid
// encodings — fuzzing from structured seeds reaches far deeper than from
// random bytes.
func fuzzSeedTrace(tb testing.TB) *Trace {
	tb.Helper()
	syms := callstack.NewSymbolTable()
	rt := syms.Define(callstack.Routine{Name: "f", File: "f.c"})
	tr := New("fuzz", 2, syms, callstack.NewInterner())
	st := tr.Stacks.Intern(callstack.Stack{{Routine: rt, Line: 3}})
	for r := int32(0); r < 2; r++ {
		ctr := counters.AllMissing()
		ctr[counters.Instructions] = 100
		tr.AddEvent(Event{Time: 10, Rank: r, Type: IterBegin, Counters: ctr})
		tr.AddEvent(Event{Time: 20, Rank: r, Type: RegionEnter, Value: 7, Counters: counters.AllMissing()})
		ctr[counters.Instructions] = 900
		tr.AddSample(Sample{Time: 25, Rank: r, Counters: ctr, Stack: st})
		tr.AddEvent(Event{Time: 30, Rank: r, Type: RegionExit, Value: 7, Counters: counters.AllMissing()})
	}
	return tr
}

// FuzzDecode drives the binary decoder, strict and salvage, over arbitrary
// bytes. Both modes must be panic- and OOM-free; whatever they accept must
// validate; and salvage must never do worse than strict.
func FuzzDecode(f *testing.F) {
	var buf bytes.Buffer
	if err := Encode(&buf, fuzzSeedTrace(f)); err != nil {
		f.Fatal(err)
	}
	full := buf.Bytes()
	f.Add(full)
	f.Add(full[:len(full)/2])
	f.Add(full[:len(full)-3])
	f.Add([]byte(binaryMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, _, err := Decode(context.Background(), bytes.NewReader(data), DecodeOptions{})
		if err == nil {
			if verr := tr.Validate(); verr != nil {
				t.Fatalf("strict decode accepted an invalid trace: %v", verr)
			}
		}
		str, rep, serr := Decode(context.Background(), bytes.NewReader(data), DecodeOptions{Salvage: true})
		if serr == nil {
			if verr := str.Validate(); verr != nil {
				t.Fatalf("salvaged trace invalid: %v", verr)
			}
			if rep == nil {
				t.Fatal("salvage succeeded without a report")
			}
		}
		if err == nil && serr != nil {
			t.Fatalf("strict accepted what salvage rejected: %v", serr)
		}
	})
}

// FuzzDecodeText drives the text decoder the same way.
func FuzzDecodeText(f *testing.F) {
	var buf bytes.Buffer
	if err := EncodeText(&buf, fuzzSeedTrace(f)); err != nil {
		f.Fatal(err)
	}
	full := buf.String()
	f.Add(full)
	f.Add(full[:len(full)/2])
	f.Add(textMagic + "\n")
	f.Add(textMagic + "\nE 0 bogus\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		tr, _, err := DecodeText(context.Background(), bytes.NewReader([]byte(data)), DecodeOptions{})
		if err == nil {
			if verr := tr.Validate(); verr != nil {
				t.Fatalf("strict text decode accepted an invalid trace: %v", verr)
			}
		}
		str, rep, serr := DecodeText(context.Background(), bytes.NewReader([]byte(data)), DecodeOptions{Salvage: true})
		if serr == nil {
			if verr := str.Validate(); verr != nil {
				t.Fatalf("salvaged text trace invalid: %v", verr)
			}
			if rep == nil {
				t.Fatal("salvage succeeded without a report")
			}
		}
		if err == nil && serr != nil {
			t.Fatalf("strict accepted what salvage rejected: %v", serr)
		}
	})
}
