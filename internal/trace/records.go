// Package trace defines the performance-data container the analysis pipeline
// consumes: instrumentation events, periodic samples, and the computation
// bursts derived from them, together with binary and text codecs and
// multi-rank merging. It plays the role the Paraver trace plays in the BSC
// tool ecosystem the paper builds on.
package trace

import (
	"fmt"

	"phasefold/internal/callstack"
	"phasefold/internal/counters"
	"phasefold/internal/sim"
)

// EventType discriminates instrumentation events. The set intentionally
// mirrors what "minimal instrumentation" captures: region (user function /
// loop body) boundaries, communication boundaries, and iteration markers.
type EventType uint8

// The event types.
const (
	RegionEnter EventType = iota // entering an instrumented computation region; Value = region id
	RegionExit                   // leaving an instrumented computation region; Value = region id
	CommEnter                    // entering a communication primitive; Value = peer rank or -1 for collectives
	CommExit                     // leaving a communication primitive; Value as CommEnter
	IterBegin                    // main-loop iteration begins; Value = iteration number
	IterEnd                      // main-loop iteration ends; Value = iteration number
	numEventTypes
)

var eventTypeNames = [numEventTypes]string{
	RegionEnter: "region_enter",
	RegionExit:  "region_exit",
	CommEnter:   "comm_enter",
	CommExit:    "comm_exit",
	IterBegin:   "iter_begin",
	IterEnd:     "iter_end",
}

// String returns the lowercase event-type name used in the text codec.
func (t EventType) String() string {
	if t < numEventTypes {
		return eventTypeNames[t]
	}
	return fmt.Sprintf("event(%d)", uint8(t))
}

// Valid reports whether t names a real event type.
func (t EventType) Valid() bool { return t < numEventTypes }

// Event is one instrumentation record. The tracing runtime reads the active
// counter group at every probe, so events carry a cumulative counter
// snapshot; counters outside the active multiplex group are Missing.
type Event struct {
	Time     sim.Time
	Rank     int32
	Type     EventType
	Value    int64
	Counters counters.Set
	Group    uint8 // multiplex group index active when the probe fired
}

// Sample is one coarse-grain sampling record: a timestamp, the cumulative
// counter snapshot, and the call stack captured by the sampling interrupt.
type Sample struct {
	Time     sim.Time
	Rank     int32
	Counters counters.Set
	Stack    callstack.StackID
	Group    uint8
}

// Burst is one computation interval derived from the event stream: the code
// executed between two instrumentation points with no communication inside.
// Bursts are the unit the structure-detection clustering works on.
type Burst struct {
	Rank     int32
	Region   int64 // instrumented region id, or -1 when delimited only by communication
	Start    sim.Time
	End      sim.Time
	Iter     int64        // main-loop iteration the burst belongs to, or -1
	StartCtr counters.Set // cumulative counter snapshot at Start (masked to Group)
	Delta    counters.Set
	Group    uint8 // multiplex group active during the burst
	Cluster  int   // cluster assigned by structure detection; ClusterNone before
	FirstSmp int   // index of first sample inside the burst (into Trace.Samples of the rank); -1 if none
	NumSmp   int   // number of samples inside the burst
}

// ClusterNone marks a burst not yet assigned to any cluster; cluster.Noise
// marks one the clustering rejected.
const ClusterNone = -2

// Duration returns the burst length.
func (b Burst) Duration() sim.Duration { return b.End - b.Start }

// Contains reports whether virtual time t falls inside the burst.
func (b Burst) Contains(t sim.Time) bool { return t >= b.Start && t < b.End }
