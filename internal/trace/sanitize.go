package trace

import (
	"fmt"
	"sort"

	"phasefold/internal/callstack"
	"phasefold/internal/counters"
)

// Problem describes one class of damage Sanitize found (and repaired) in a
// rank's streams. Problems are diagnostics, not errors: after Sanitize the
// trace satisfies Validate's invariants again, at the cost of the dropped or
// degraded records the problem records.
type Problem struct {
	// Rank is the process the problem was found in.
	Rank int
	// Kind is a stable machine-readable slug (see the Problem* constants).
	Kind string
	// Count is how many records were affected.
	Count int
	// Detail is the human-readable description.
	Detail string
}

// The problem kinds Sanitize reports.
const (
	ProblemRankMissing   = "rank-missing"    // nil rank slot replaced by an empty one
	ProblemRankField     = "rank-field"      // records carried a foreign rank number
	ProblemBadEventType  = "bad-event-type"  // events with undefined types dropped
	ProblemOutOfOrder    = "out-of-order"    // records re-sorted into time order
	ProblemDuplicate     = "duplicate"       // exact duplicate records dropped
	ProblemNesting       = "nesting"         // unmatched enter/exit events dropped
	ProblemCounterValue  = "counter-regress" // non-monotonic counter values masked
	ProblemDanglingStack = "dangling-stack"  // unresolvable stack references cleared
	ProblemCorruptLine   = "corrupt-line"    // malformed text-format lines skipped
)

func (p Problem) String() string {
	return fmt.Sprintf("rank %d: %s (%d records): %s", p.Rank, p.Kind, p.Count, p.Detail)
}

// Sanitize repairs a damaged trace in place so that it satisfies Validate's
// invariants again, returning a description of every repair made. It is the
// shared recovery pass behind salvage decoding and degraded-mode analysis:
// rather than rejecting a trace whose acquisition dropped, duplicated,
// reordered, or corrupted records, Sanitize keeps everything trustworthy and
// removes or masks the rest.
//
// Repairs, per rank: nil rank slots are replaced by empty ones; foreign rank
// fields are rewritten; events with undefined types are dropped; streams are
// re-sorted into time order; exact duplicate records are dropped; unmatched
// region/communication enter and exit events are dropped until the nesting
// balances; cumulative counter values that regress (counter wrap, zeroed or
// garbled values) are masked to Missing; unresolvable call-stack references
// are cleared. A pristine trace is untouched and reports no problems.
func (t *Trace) Sanitize() []Problem {
	var probs []Problem
	for r := range t.Ranks {
		probs = append(probs, t.sanitizeRank(r)...)
	}
	return probs
}

func (t *Trace) sanitizeRank(r int) []Problem {
	var probs []Problem
	add := func(kind string, count int, format string, args ...any) {
		if count > 0 {
			probs = append(probs, Problem{Rank: r, Kind: kind, Count: count, Detail: fmt.Sprintf(format, args...)})
		}
	}
	rd := t.Ranks[r]
	if rd == nil {
		t.Ranks[r] = &RankData{Rank: int32(r)}
		add(ProblemRankMissing, 1, "rank slot was empty")
		return probs
	}

	// Rank-field normalization: records can only live in their own rank's
	// stream, so a foreign rank number is repaired, not relocated.
	foreign := 0
	if int(rd.Rank) != r {
		rd.Rank = int32(r)
		foreign++
	}
	for i := range rd.Events {
		if int(rd.Events[i].Rank) != r {
			rd.Events[i].Rank = int32(r)
			foreign++
		}
	}
	for i := range rd.Samples {
		if int(rd.Samples[i].Rank) != r {
			rd.Samples[i].Rank = int32(r)
			foreign++
		}
	}
	add(ProblemRankField, foreign, "records carried a foreign rank number")

	// Drop events whose type is not defined; nothing downstream can
	// interpret them.
	badType := 0
	kept := rd.Events[:0]
	for _, e := range rd.Events {
		if !e.Type.Valid() {
			badType++
			continue
		}
		kept = append(kept, e)
	}
	rd.Events = kept
	add(ProblemBadEventType, badType, "events with undefined types dropped")

	// Re-establish time order.
	disorder := countDisorder(rd)
	if disorder > 0 {
		sort.SliceStable(rd.Events, func(i, j int) bool { return rd.Events[i].Time < rd.Events[j].Time })
		sort.SliceStable(rd.Samples, func(i, j int) bool { return rd.Samples[i].Time < rd.Samples[j].Time })
		add(ProblemOutOfOrder, disorder, "records re-sorted into time order")
	}

	// Drop exact duplicates (identical adjacent records).
	dups := dedupEvents(rd) + dedupSamples(rd)
	add(ProblemDuplicate, dups, "exact duplicate records dropped")

	// Balance region/communication nesting by dropping unmatched events.
	dropped := repairNesting(rd)
	add(ProblemNesting, dropped, "unmatched region/comm enter or exit events dropped")

	// Mask cumulative counter values that regress: counter wrap, zeroed or
	// garbled snapshots. The masked values read as "not captured", which
	// every downstream stage already handles (it is what multiplexing
	// produces legitimately).
	regress := maskCounterRegressions(rd)
	add(ProblemCounterValue, regress, "non-monotonic cumulative counter values masked")

	// Clear unresolvable stack references.
	dangling := 0
	for i := range rd.Samples {
		s := &rd.Samples[i]
		if s.Stack != callstack.NoStack {
			if _, ok := t.Stacks.Get(s.Stack); !ok {
				s.Stack = callstack.NoStack
				dangling++
			}
		}
	}
	add(ProblemDanglingStack, dangling, "unresolvable call-stack references cleared")
	return probs
}

// countDisorder counts records whose timestamp precedes their predecessor's.
func countDisorder(rd *RankData) int {
	n := 0
	for i := 1; i < len(rd.Events); i++ {
		if rd.Events[i].Time < rd.Events[i-1].Time {
			n++
		}
	}
	for i := 1; i < len(rd.Samples); i++ {
		if rd.Samples[i].Time < rd.Samples[i-1].Time {
			n++
		}
	}
	return n
}

func dedupEvents(rd *RankData) int {
	if len(rd.Events) < 2 {
		return 0
	}
	out := rd.Events[:1]
	dropped := 0
	for _, e := range rd.Events[1:] {
		if e == out[len(out)-1] {
			dropped++
			continue
		}
		out = append(out, e)
	}
	rd.Events = out
	return dropped
}

func dedupSamples(rd *RankData) int {
	if len(rd.Samples) < 2 {
		return 0
	}
	out := rd.Samples[:1]
	dropped := 0
	for _, s := range rd.Samples[1:] {
		if s == out[len(out)-1] {
			dropped++
			continue
		}
		out = append(out, s)
	}
	rd.Samples = out
	return dropped
}

// repairNesting drops the minimal set of events that keeps region and
// communication enter/exit pairs balanced: an exit that matches no open
// enter (or, for regions, whose value does not match the innermost open
// region) is dropped on the spot; enters still open at the end of the
// stream — a truncated rank — are dropped afterwards.
func repairNesting(rd *RankData) int {
	type open struct {
		value int64
		idx   int // index into out
	}
	var (
		out       = rd.Events[:0]
		regions   []open
		comms     []int // indices into out of open comm enters
		dropAtEnd []int
		dropped   = 0
	)
	for _, e := range rd.Events {
		switch e.Type {
		case RegionEnter:
			regions = append(regions, open{value: e.Value, idx: len(out)})
		case RegionExit:
			if len(regions) == 0 || regions[len(regions)-1].value != e.Value {
				dropped++
				continue
			}
			regions = regions[:len(regions)-1]
		case CommEnter:
			comms = append(comms, len(out))
		case CommExit:
			if len(comms) == 0 {
				dropped++
				continue
			}
			comms = comms[:len(comms)-1]
		}
		out = append(out, e)
	}
	for _, o := range regions {
		dropAtEnd = append(dropAtEnd, o.idx)
	}
	dropAtEnd = append(dropAtEnd, comms...)
	if len(dropAtEnd) == 0 {
		rd.Events = out
		return dropped
	}
	sort.Ints(dropAtEnd)
	final := out[:0]
	di := 0
	for i, e := range out {
		if di < len(dropAtEnd) && i == dropAtEnd[di] {
			di++
			dropped++
			continue
		}
		final = append(final, e)
	}
	rd.Events = final
	return dropped
}

// maskCounterRegressions restores per-counter monotonicity along the rank's
// merged event+sample timeline by masking the minimal set of values: for
// each counter it keeps the longest non-decreasing subsequence of captured
// values and masks the rest to Missing. The subsequence criterion matters —
// a greedy "mask anything below the running max" pass would let one garbled
// huge value poison every legitimate value after it, turning a 2% corruption
// rate into a near-total data loss.
func maskCounterRegressions(rd *RankData) int {
	// Collect the merged timeline once as counter-set pointers.
	sets := make([]*counters.Set, 0, len(rd.Events)+len(rd.Samples))
	ei, si := 0, 0
	for ei < len(rd.Events) || si < len(rd.Samples) {
		haveE, haveS := ei < len(rd.Events), si < len(rd.Samples)
		if haveE && (!haveS || rd.Events[ei].Time <= rd.Samples[si].Time) {
			sets = append(sets, &rd.Events[ei].Counters)
			ei++
		} else {
			sets = append(sets, &rd.Samples[si].Counters)
			si++
		}
	}
	masked := 0
	var idxs []int
	var vals []int64
	for c := counters.ID(0); c < counters.NumIDs; c++ {
		idxs, vals = idxs[:0], vals[:0]
		for i, s := range sets {
			v := s[c]
			if v == counters.Missing {
				continue
			}
			if v < 0 { // no valid cumulative counter is negative
				s[c] = counters.Missing
				masked++
				continue
			}
			idxs = append(idxs, i)
			vals = append(vals, v)
		}
		for _, i := range maskOutsideLNDS(vals, idxs) {
			sets[i][c] = counters.Missing
			masked++
		}
	}
	return masked
}

// maskOutsideLNDS returns the elements of idxs NOT on a longest
// non-decreasing subsequence of vals. Patience sorting with parent links,
// O(n log n).
func maskOutsideLNDS(vals []int64, idxs []int) []int {
	n := len(vals)
	if n < 2 {
		return nil
	}
	tails := make([]int, 0, n) // tails[k] = index of smallest tail of a subsequence of length k+1
	parent := make([]int, n)   // parent[i] = previous element on i's subsequence
	already := func(v int64, k int) bool { return vals[tails[k]] <= v }
	for i := 0; i < n; i++ {
		lo, hi := 0, len(tails)
		for lo < hi { // first tail position whose value exceeds vals[i]
			mid := (lo + hi) / 2
			if already(vals[i], mid) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo > 0 {
			parent[i] = tails[lo-1]
		} else {
			parent[i] = -1
		}
		if lo == len(tails) {
			tails = append(tails, i)
		} else {
			tails[lo] = i
		}
	}
	keep := make([]bool, n)
	for i := tails[len(tails)-1]; i >= 0; i = parent[i] {
		keep[i] = true
	}
	var out []int
	for i := range vals {
		if !keep[i] {
			out = append(out, idxs[i])
		}
	}
	return out
}
