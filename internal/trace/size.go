package trace

import "unsafe"

// EventBytes and SampleBytes are the in-memory sizes of one decoded record,
// the unit of the resident-size estimates used by resource budgets.
var (
	EventBytes  = int64(unsafe.Sizeof(Event{}))
	SampleBytes = int64(unsafe.Sizeof(Sample{}))
)

// EstimateBytes approximates the resident size of the trace's record
// streams (slice backing arrays only; the shared symbol table and stack
// interner are excluded). Budget enforcement and the batch runner use it to
// bound memory without walking the allocator.
func (t *Trace) EstimateBytes() int64 {
	var total int64
	for _, rd := range t.Ranks {
		if rd == nil {
			continue
		}
		total += int64(len(rd.Events))*EventBytes + int64(len(rd.Samples))*SampleBytes
	}
	return total
}
