package trace

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"phasefold/internal/callstack"
	"phasefold/internal/counters"
	"phasefold/internal/obs"
	"phasefold/internal/sim"
)

// Text trace format: a line-oriented, human-inspectable rendering in the
// spirit of Paraver's .prv files. One record per line:
//
//	#PFTEXT1 <app>
//	R <id> <name> <file> <startLine> <endLine>          routine definition
//	K <id> <nframes> (<routine>:<line>)...              stack definition
//	E <rank> <time> <type> <value> <group> <counters>   event
//	S <rank> <time> <stack> <group> <counters>          sample
//
// Counters are rendered as comma-separated "id=value" pairs of the captured
// counters only ("-" when none are captured).

const textMagic = "#PFTEXT1"

func formatCounters(s counters.Set) string {
	var b strings.Builder
	first := true
	for i, v := range s {
		if v == counters.Missing {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d=%d", i, v)
	}
	if first {
		return "-"
	}
	return b.String()
}

func parseCounters(field string) (counters.Set, error) {
	s := counters.AllMissing()
	if field == "-" {
		return s, nil
	}
	for _, pair := range strings.Split(field, ",") {
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			return s, fmt.Errorf("trace: bad counter pair %q", pair)
		}
		id, err := strconv.Atoi(pair[:eq])
		if err != nil || id < 0 || id >= int(counters.NumIDs) {
			return s, fmt.Errorf("trace: bad counter id in %q", pair)
		}
		v, err := strconv.ParseInt(pair[eq+1:], 10, 64)
		if err != nil {
			return s, fmt.Errorf("trace: bad counter value in %q", pair)
		}
		s[id] = v
	}
	return s, nil
}

// EncodeText writes t to w in the text trace format.
func EncodeText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "%s %s\n", textMagic, t.AppName); err != nil {
		return err
	}
	for id, r := range t.Symbols.Routines() {
		fmt.Fprintf(bw, "R %d %s %s %d %d\n", id, r.Name, r.File, r.StartLine, r.EndLine)
	}
	for id, st := range t.Stacks.All() {
		fmt.Fprintf(bw, "K %d %d", id, len(st))
		for _, f := range st {
			fmt.Fprintf(bw, " %d:%d", f.Routine, f.Line)
		}
		fmt.Fprintln(bw)
	}
	for _, rd := range t.Ranks {
		for _, e := range rd.Events {
			fmt.Fprintf(bw, "E %d %d %s %d %d %s\n",
				e.Rank, e.Time, e.Type, e.Value, e.Group, formatCounters(e.Counters))
		}
		for _, s := range rd.Samples {
			fmt.Fprintf(bw, "S %d %d %d %d %s\n",
				s.Rank, s.Time, s.Stack, s.Group, formatCounters(s.Counters))
		}
	}
	return bw.Flush()
}

var eventTypeByName = func() map[string]EventType {
	m := make(map[string]EventType, numEventTypes)
	for t := EventType(0); t < numEventTypes; t++ {
		m[t.String()] = t
	}
	return m
}()

// maxTextRank bounds the rank numbers a text trace may declare; the decoder
// allocates a slot per rank up to the maximum seen, so an absurd rank number
// must not translate into an absurd allocation.
const maxTextRank = 1 << 20

// DecodeText reads a text-format trace from rd under ctx and opt. In
// salvage mode, malformed lines are skipped (and reported) instead of
// failing the decode, and the recovered records are repaired with Sanitize.
// Errors wrap the package sentinels for errors.Is dispatch. The line loop
// polls ctx every few thousand lines and aborts with its error, even in
// salvage mode (cancellation is never damage to absorb). The format is
// line-oriented with no framing, so text decoding is single-goroutine;
// opt.Parallelism is ignored here.
func DecodeText(ctx context.Context, rd io.Reader, opt DecodeOptions) (*Trace, *SalvageReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	ctx, span := obs.StartSpan(ctx, "decode")
	defer span.End()
	cr := &countingReader{r: rd}
	finish := startDecodePass(ctx, span, "text", opt, cr)
	sc := bufio.NewScanner(cr)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	if !sc.Scan() {
		return nil, nil, fmt.Errorf("%w: empty text trace", ErrTruncated)
	}
	header := strings.Fields(sc.Text())
	if len(header) < 1 || header[0] != textMagic {
		return nil, nil, fmt.Errorf("%w: bad text header %q", ErrBadMagic, sc.Text())
	}
	app := ""
	if len(header) > 1 {
		app = strings.Join(header[1:], " ")
	}
	syms := callstack.NewSymbolTable()
	stacks := callstack.NewInterner()
	var stackIDs []callstack.StackID
	var events []Event
	var samples []Sample
	maxRank := -1
	lineNo := 1
	badLines := 0
	var firstBad error
	fail := func(format string, args ...any) error {
		err := fmt.Errorf("%w: line %d: %s", ErrCorrupt, lineNo, fmt.Sprintf(format, args...))
		if opt.Salvage {
			badLines++
			if firstBad == nil {
				firstBad = err
			}
			return nil
		}
		return err
	}
	for sc.Scan() {
		lineNo++
		if lineNo%pollInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "R":
			if len(f) != 6 {
				if err := fail("malformed routine definition"); err != nil {
					return nil, nil, err
				}
				continue
			}
			start, err1 := strconv.Atoi(f[4])
			end, err2 := strconv.Atoi(f[5])
			if err1 != nil || err2 != nil {
				if err := fail("bad routine lines"); err != nil {
					return nil, nil, err
				}
				continue
			}
			rt := callstack.Routine{Name: f[2], File: f[3], StartLine: start, EndLine: end}
			if cerr := rt.Check(); cerr != nil {
				if err := fail("bad routine: %v", cerr); err != nil {
					return nil, nil, err
				}
				continue
			}
			syms.Define(rt)
		case "K":
			if len(f) < 3 {
				if err := fail("malformed stack definition"); err != nil {
					return nil, nil, err
				}
				continue
			}
			nf, err := strconv.Atoi(f[2])
			if err != nil || nf != len(f)-3 || nf > maxStackFrames {
				if err := fail("stack frame count mismatch"); err != nil {
					return nil, nil, err
				}
				continue
			}
			st := make(callstack.Stack, 0, nf)
			bad := false
			for i := 0; i < nf; i++ {
				colon := strings.IndexByte(f[3+i], ':')
				if colon < 0 {
					bad = true
					break
				}
				rid, err1 := strconv.Atoi(f[3+i][:colon])
				ln, err2 := strconv.Atoi(f[3+i][colon+1:])
				if err1 != nil || err2 != nil {
					bad = true
					break
				}
				st = append(st, callstack.Frame{Routine: callstack.RoutineID(rid), Line: ln})
			}
			if bad {
				if err := fail("bad stack frame"); err != nil {
					return nil, nil, err
				}
				continue
			}
			stackIDs = append(stackIDs, stacks.Intern(st))
		case "E":
			if len(f) != 7 {
				if err := fail("malformed event"); err != nil {
					return nil, nil, err
				}
				continue
			}
			rank, err1 := strconv.Atoi(f[1])
			tm, err2 := strconv.ParseInt(f[2], 10, 64)
			typ, okT := eventTypeByName[f[3]]
			val, err3 := strconv.ParseInt(f[4], 10, 64)
			grp, err4 := strconv.Atoi(f[5])
			if err1 != nil || err2 != nil || !okT || err3 != nil || err4 != nil ||
				rank < 0 || rank > maxTextRank {
				if err := fail("bad event fields"); err != nil {
					return nil, nil, err
				}
				continue
			}
			ctr, err := parseCounters(f[6])
			if err != nil {
				if err := fail("%v", err); err != nil {
					return nil, nil, err
				}
				continue
			}
			if rank > maxRank {
				maxRank = rank
			}
			events = append(events, Event{
				Time: sim.Time(tm), Rank: int32(rank), Type: typ, Value: val,
				Group: uint8(grp), Counters: ctr,
			})
		case "S":
			if len(f) != 6 {
				if err := fail("malformed sample"); err != nil {
					return nil, nil, err
				}
				continue
			}
			rank, err1 := strconv.Atoi(f[1])
			tm, err2 := strconv.ParseInt(f[2], 10, 64)
			sid, err3 := strconv.Atoi(f[3])
			grp, err4 := strconv.Atoi(f[4])
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil ||
				rank < 0 || rank > maxTextRank {
				if err := fail("bad sample fields"); err != nil {
					return nil, nil, err
				}
				continue
			}
			ctr, err := parseCounters(f[5])
			if err != nil {
				if err := fail("%v", err); err != nil {
					return nil, nil, err
				}
				continue
			}
			stack := callstack.StackID(sid)
			if stack != callstack.NoStack {
				if sid < 0 || sid >= len(stackIDs) {
					if err := fail("sample references unknown stack %d", sid); err != nil {
						return nil, nil, err
					}
					stack = callstack.NoStack
				} else {
					stack = stackIDs[sid]
				}
			}
			if rank > maxRank {
				maxRank = rank
			}
			samples = append(samples, Sample{
				Time: sim.Time(tm), Rank: int32(rank), Stack: stack,
				Group: uint8(grp), Counters: ctr,
			})
		default:
			if err := fail("unknown record kind %q", f[0]); err != nil {
				return nil, nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		if !opt.Salvage {
			return nil, nil, classifyRead(err)
		}
		badLines++
		if firstBad == nil {
			firstBad = classifyRead(err)
		}
	}
	if maxRank < 0 {
		return nil, nil, fmt.Errorf("%w: text trace has no records", ErrNoRanks)
	}
	t, err := NewChecked(app, maxRank+1, syms, stacks)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range events {
		t.AddEvent(e)
	}
	for _, s := range samples {
		t.AddSample(s)
	}
	t.SortRecords()
	if !opt.Salvage {
		if err := t.Validate(); err != nil {
			return nil, nil, fmt.Errorf("decoded text trace invalid: %w", err)
		}
		finish(t, nil)
		return t, nil, nil
	}
	report := &SalvageReport{Err: firstBad, Events: len(events), Samples: len(samples)}
	if badLines > 0 {
		report.Problems = append(report.Problems, Problem{
			Rank: -1, Kind: ProblemCorruptLine, Count: badLines,
			Detail: "malformed text lines skipped",
		})
	}
	report.Problems = append(report.Problems, t.Sanitize()...)
	if err := t.Validate(); err != nil {
		return nil, nil, fmt.Errorf("salvaged trace still invalid: %w", err)
	}
	finish(t, report)
	return t, report, nil
}
