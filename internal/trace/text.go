package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"phasefold/internal/callstack"
	"phasefold/internal/counters"
	"phasefold/internal/sim"
)

// Text trace format: a line-oriented, human-inspectable rendering in the
// spirit of Paraver's .prv files. One record per line:
//
//	#PFTEXT1 <app>
//	R <id> <name> <file> <startLine> <endLine>          routine definition
//	K <id> <nframes> (<routine>:<line>)...              stack definition
//	E <rank> <time> <type> <value> <group> <counters>   event
//	S <rank> <time> <stack> <group> <counters>          sample
//
// Counters are rendered as comma-separated "id=value" pairs of the captured
// counters only ("-" when none are captured).

const textMagic = "#PFTEXT1"

func formatCounters(s counters.Set) string {
	var b strings.Builder
	first := true
	for i, v := range s {
		if v == counters.Missing {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d=%d", i, v)
	}
	if first {
		return "-"
	}
	return b.String()
}

func parseCounters(field string) (counters.Set, error) {
	s := counters.AllMissing()
	if field == "-" {
		return s, nil
	}
	for _, pair := range strings.Split(field, ",") {
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			return s, fmt.Errorf("trace: bad counter pair %q", pair)
		}
		id, err := strconv.Atoi(pair[:eq])
		if err != nil || id < 0 || id >= int(counters.NumIDs) {
			return s, fmt.Errorf("trace: bad counter id in %q", pair)
		}
		v, err := strconv.ParseInt(pair[eq+1:], 10, 64)
		if err != nil {
			return s, fmt.Errorf("trace: bad counter value in %q", pair)
		}
		s[id] = v
	}
	return s, nil
}

// EncodeText writes t to w in the text trace format.
func EncodeText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "%s %s\n", textMagic, t.AppName); err != nil {
		return err
	}
	for id, r := range t.Symbols.Routines() {
		fmt.Fprintf(bw, "R %d %s %s %d %d\n", id, r.Name, r.File, r.StartLine, r.EndLine)
	}
	for id, st := range t.Stacks.All() {
		fmt.Fprintf(bw, "K %d %d", id, len(st))
		for _, f := range st {
			fmt.Fprintf(bw, " %d:%d", f.Routine, f.Line)
		}
		fmt.Fprintln(bw)
	}
	for _, rd := range t.Ranks {
		for _, e := range rd.Events {
			fmt.Fprintf(bw, "E %d %d %s %d %d %s\n",
				e.Rank, e.Time, e.Type, e.Value, e.Group, formatCounters(e.Counters))
		}
		for _, s := range rd.Samples {
			fmt.Fprintf(bw, "S %d %d %d %d %s\n",
				s.Rank, s.Time, s.Stack, s.Group, formatCounters(s.Counters))
		}
	}
	return bw.Flush()
}

var eventTypeByName = func() map[string]EventType {
	m := make(map[string]EventType, numEventTypes)
	for t := EventType(0); t < numEventTypes; t++ {
		m[t.String()] = t
	}
	return m
}()

// DecodeText reads a text-format trace from rd.
func DecodeText(rd io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty text trace")
	}
	header := strings.Fields(sc.Text())
	if len(header) < 1 || header[0] != textMagic {
		return nil, fmt.Errorf("trace: bad text header %q", sc.Text())
	}
	app := ""
	if len(header) > 1 {
		app = strings.Join(header[1:], " ")
	}
	syms := callstack.NewSymbolTable()
	stacks := callstack.NewInterner()
	var stackIDs []callstack.StackID
	type pendingEvent struct{ e Event }
	type pendingSample struct{ s Sample }
	var events []pendingEvent
	var samples []pendingSample
	maxRank := -1
	lineNo := 1
	fail := func(format string, args ...any) (*Trace, error) {
		return nil, fmt.Errorf("trace: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "R":
			if len(f) != 6 {
				return fail("malformed routine definition")
			}
			start, err1 := strconv.Atoi(f[4])
			end, err2 := strconv.Atoi(f[5])
			if err1 != nil || err2 != nil {
				return fail("bad routine lines")
			}
			syms.Define(callstack.Routine{Name: f[2], File: f[3], StartLine: start, EndLine: end})
		case "K":
			if len(f) < 3 {
				return fail("malformed stack definition")
			}
			nf, err := strconv.Atoi(f[2])
			if err != nil || nf != len(f)-3 {
				return fail("stack frame count mismatch")
			}
			st := make(callstack.Stack, nf)
			for i := 0; i < nf; i++ {
				colon := strings.IndexByte(f[3+i], ':')
				if colon < 0 {
					return fail("bad frame %q", f[3+i])
				}
				rid, err1 := strconv.Atoi(f[3+i][:colon])
				ln, err2 := strconv.Atoi(f[3+i][colon+1:])
				if err1 != nil || err2 != nil {
					return fail("bad frame %q", f[3+i])
				}
				st[i] = callstack.Frame{Routine: callstack.RoutineID(rid), Line: ln}
			}
			stackIDs = append(stackIDs, stacks.Intern(st))
		case "E":
			if len(f) != 7 {
				return fail("malformed event")
			}
			rank, err1 := strconv.Atoi(f[1])
			tm, err2 := strconv.ParseInt(f[2], 10, 64)
			typ, okT := eventTypeByName[f[3]]
			val, err3 := strconv.ParseInt(f[4], 10, 64)
			grp, err4 := strconv.Atoi(f[5])
			if err1 != nil || err2 != nil || !okT || err3 != nil || err4 != nil {
				return fail("bad event fields")
			}
			ctr, err := parseCounters(f[6])
			if err != nil {
				return fail("%v", err)
			}
			if rank > maxRank {
				maxRank = rank
			}
			events = append(events, pendingEvent{Event{
				Time: sim.Time(tm), Rank: int32(rank), Type: typ, Value: val,
				Group: uint8(grp), Counters: ctr,
			}})
		case "S":
			if len(f) != 6 {
				return fail("malformed sample")
			}
			rank, err1 := strconv.Atoi(f[1])
			tm, err2 := strconv.ParseInt(f[2], 10, 64)
			sid, err3 := strconv.Atoi(f[3])
			grp, err4 := strconv.Atoi(f[4])
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
				return fail("bad sample fields")
			}
			ctr, err := parseCounters(f[5])
			if err != nil {
				return fail("%v", err)
			}
			stack := callstack.StackID(sid)
			if stack != callstack.NoStack {
				if sid < 0 || sid >= len(stackIDs) {
					return fail("sample references unknown stack %d", sid)
				}
				stack = stackIDs[sid]
			}
			if rank > maxRank {
				maxRank = rank
			}
			samples = append(samples, pendingSample{Sample{
				Time: sim.Time(tm), Rank: int32(rank), Stack: stack,
				Group: uint8(grp), Counters: ctr,
			}})
		default:
			return fail("unknown record kind %q", f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if maxRank < 0 {
		return nil, fmt.Errorf("trace: text trace has no records")
	}
	t := New(app, maxRank+1, syms, stacks)
	for _, pe := range events {
		t.AddEvent(pe.e)
	}
	for _, ps := range samples {
		t.AddSample(ps.s)
	}
	t.SortRecords()
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: decoded text trace invalid: %w", err)
	}
	return t, nil
}
