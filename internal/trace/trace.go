package trace

import (
	"fmt"
	"sort"

	"phasefold/internal/callstack"
	"phasefold/internal/sim"
)

// RankData holds the records of a single process (rank), each stream in
// time order.
type RankData struct {
	Rank    int32
	Events  []Event
	Samples []Sample
}

// Trace is a complete multi-rank execution record plus the shared symbol
// information needed to interpret call stacks.
type Trace struct {
	// AppName labels the traced application in reports.
	AppName string
	// Ranks holds per-process records, indexed by rank number.
	Ranks []*RankData
	// Symbols is the routine/line table of the traced binary.
	Symbols *callstack.SymbolTable
	// Stacks interns the call-stack snapshots referenced by samples.
	Stacks *callstack.Interner
}

// New returns an empty trace for nRanks processes sharing the given symbol
// table and stack interner. Either may be nil, in which case fresh empty
// ones are created.
func New(appName string, nRanks int, syms *callstack.SymbolTable, stacks *callstack.Interner) *Trace {
	if nRanks <= 0 {
		panic(fmt.Sprintf("trace: non-positive rank count %d", nRanks))
	}
	if syms == nil {
		syms = callstack.NewSymbolTable()
	}
	if stacks == nil {
		stacks = callstack.NewInterner()
	}
	t := &Trace{AppName: appName, Symbols: syms, Stacks: stacks}
	t.Ranks = make([]*RankData, nRanks)
	for i := range t.Ranks {
		t.Ranks[i] = &RankData{Rank: int32(i)}
	}
	return t
}

// NumRanks returns the number of processes in the trace.
func (t *Trace) NumRanks() int { return len(t.Ranks) }

// Rank returns the records of rank r, panicking on an out-of-range rank —
// rank numbers come from the trace itself, so a bad index is a program bug.
func (t *Trace) Rank(r int) *RankData {
	if r < 0 || r >= len(t.Ranks) {
		panic(fmt.Sprintf("trace: rank %d out of range [0,%d)", r, len(t.Ranks)))
	}
	return t.Ranks[r]
}

// AddEvent appends an event to its rank's stream.
func (t *Trace) AddEvent(e Event) {
	rd := t.Rank(int(e.Rank))
	rd.Events = append(rd.Events, e)
}

// AddSample appends a sample to its rank's stream.
func (t *Trace) AddSample(s Sample) {
	rd := t.Rank(int(s.Rank))
	rd.Samples = append(rd.Samples, s)
}

// NumEvents returns the total event count across ranks.
func (t *Trace) NumEvents() int {
	n := 0
	for _, rd := range t.Ranks {
		n += len(rd.Events)
	}
	return n
}

// NumSamples returns the total sample count across ranks.
func (t *Trace) NumSamples() int {
	n := 0
	for _, rd := range t.Ranks {
		n += len(rd.Samples)
	}
	return n
}

// EndTime returns the timestamp of the last record in the trace.
func (t *Trace) EndTime() sim.Time {
	var end sim.Time
	for _, rd := range t.Ranks {
		if n := len(rd.Events); n > 0 && rd.Events[n-1].Time > end {
			end = rd.Events[n-1].Time
		}
		if n := len(rd.Samples); n > 0 && rd.Samples[n-1].Time > end {
			end = rd.Samples[n-1].Time
		}
	}
	return end
}

// SortRecords re-establishes time order within every rank's streams. Trace
// producers in this repository emit in order already; SortRecords exists for
// traces assembled from merged or decoded sources.
func (t *Trace) SortRecords() {
	for _, rd := range t.Ranks {
		sort.SliceStable(rd.Events, func(i, j int) bool { return rd.Events[i].Time < rd.Events[j].Time })
		sort.SliceStable(rd.Samples, func(i, j int) bool { return rd.Samples[i].Time < rd.Samples[j].Time })
	}
}

// Validate checks the structural invariants decoded or hand-built traces
// must satisfy: records sorted by time, rank fields matching their stream,
// balanced region/comm nesting, and stack references resolving.
func (t *Trace) Validate() error {
	for r, rd := range t.Ranks {
		if rd == nil {
			return fmt.Errorf("trace: rank %d missing", r)
		}
		if int(rd.Rank) != r {
			return fmt.Errorf("trace: rank slot %d holds rank %d", r, rd.Rank)
		}
		var prev sim.Time
		depthRegion, depthComm := 0, 0
		for i, e := range rd.Events {
			if e.Time < prev {
				return fmt.Errorf("trace: rank %d event %d out of order (%d after %d)", r, i, e.Time, prev)
			}
			prev = e.Time
			if int(e.Rank) != r {
				return fmt.Errorf("trace: rank %d event %d carries rank %d", r, i, e.Rank)
			}
			if !e.Type.Valid() {
				return fmt.Errorf("trace: rank %d event %d has invalid type %d", r, i, e.Type)
			}
			switch e.Type {
			case RegionEnter:
				depthRegion++
			case RegionExit:
				depthRegion--
				if depthRegion < 0 {
					return fmt.Errorf("trace: rank %d event %d: region exit without enter", r, i)
				}
			case CommEnter:
				depthComm++
			case CommExit:
				depthComm--
				if depthComm < 0 {
					return fmt.Errorf("trace: rank %d event %d: comm exit without enter", r, i)
				}
			}
		}
		if depthRegion != 0 {
			return fmt.Errorf("trace: rank %d has %d unclosed regions", r, depthRegion)
		}
		if depthComm != 0 {
			return fmt.Errorf("trace: rank %d has %d unclosed comms", r, depthComm)
		}
		prev = 0
		for i, s := range rd.Samples {
			if s.Time < prev {
				return fmt.Errorf("trace: rank %d sample %d out of order", r, i)
			}
			prev = s.Time
			if int(s.Rank) != r {
				return fmt.Errorf("trace: rank %d sample %d carries rank %d", r, i, s.Rank)
			}
			if s.Stack != callstack.NoStack {
				if _, ok := t.Stacks.Get(s.Stack); !ok {
					return fmt.Errorf("trace: rank %d sample %d references unknown stack %d", r, i, s.Stack)
				}
			}
		}
	}
	return nil
}

// Merge combines several single-application traces (e.g. produced by
// independent per-rank tracing backends) into one. All inputs must share the
// same symbol table and stack interner; rank numbers must not collide.
func Merge(app string, parts ...*Trace) (*Trace, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("trace: nothing to merge")
	}
	syms, stacks := parts[0].Symbols, parts[0].Stacks
	maxRank := -1
	for _, p := range parts {
		if p.Symbols != syms || p.Stacks != stacks {
			return nil, fmt.Errorf("trace: merge parts do not share symbol tables")
		}
		for _, rd := range p.Ranks {
			if len(rd.Events) == 0 && len(rd.Samples) == 0 {
				continue
			}
			if int(rd.Rank) > maxRank {
				maxRank = int(rd.Rank)
			}
		}
	}
	if maxRank < 0 {
		return nil, fmt.Errorf("trace: merge parts are all empty")
	}
	out := New(app, maxRank+1, syms, stacks)
	seen := make([]bool, maxRank+1)
	for _, p := range parts {
		for _, rd := range p.Ranks {
			if len(rd.Events) == 0 && len(rd.Samples) == 0 {
				continue
			}
			r := int(rd.Rank)
			if seen[r] {
				return nil, fmt.Errorf("trace: merge rank %d present twice", r)
			}
			seen[r] = true
			out.Ranks[r].Events = append(out.Ranks[r].Events, rd.Events...)
			out.Ranks[r].Samples = append(out.Ranks[r].Samples, rd.Samples...)
		}
	}
	out.SortRecords()
	return out, nil
}
