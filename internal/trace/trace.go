package trace

import (
	"context"
	"fmt"
	"sort"

	"phasefold/internal/callstack"
	"phasefold/internal/counters"
	"phasefold/internal/sim"
)

// RankData holds the records of a single process (rank), each stream in
// time order.
type RankData struct {
	Rank    int32
	Events  []Event
	Samples []Sample
}

// Trace is a complete multi-rank execution record plus the shared symbol
// information needed to interpret call stacks.
type Trace struct {
	// AppName labels the traced application in reports.
	AppName string
	// Ranks holds per-process records, indexed by rank number.
	Ranks []*RankData
	// Symbols is the routine/line table of the traced binary.
	Symbols *callstack.SymbolTable
	// Stacks interns the call-stack snapshots referenced by samples.
	Stacks *callstack.Interner
}

// New returns an empty trace for nRanks processes sharing the given symbol
// table and stack interner. Either may be nil, in which case fresh empty
// ones are created. New is for in-repo construction where the rank count is
// known good; it panics on a non-positive count. Code handling decoded or
// otherwise untrusted input must use NewChecked instead.
func New(appName string, nRanks int, syms *callstack.SymbolTable, stacks *callstack.Interner) *Trace {
	t, err := NewChecked(appName, nRanks, syms, stacks)
	if err != nil {
		panic(err.Error())
	}
	return t
}

// NewChecked is New with the rank-count invariant reported as an error
// instead of a panic — the constructor for counts read from external input.
func NewChecked(appName string, nRanks int, syms *callstack.SymbolTable, stacks *callstack.Interner) (*Trace, error) {
	if nRanks <= 0 {
		return nil, fmt.Errorf("%w: non-positive rank count %d", ErrNoRanks, nRanks)
	}
	if syms == nil {
		syms = callstack.NewSymbolTable()
	}
	if stacks == nil {
		stacks = callstack.NewInterner()
	}
	t := &Trace{AppName: appName, Symbols: syms, Stacks: stacks}
	t.Ranks = make([]*RankData, nRanks)
	for i := range t.Ranks {
		t.Ranks[i] = &RankData{Rank: int32(i)}
	}
	return t, nil
}

// NumRanks returns the number of processes in the trace.
func (t *Trace) NumRanks() int { return len(t.Ranks) }

// Rank returns the records of rank r, panicking on an out-of-range rank —
// rank numbers come from the trace itself, so a bad index is a program bug.
// Callers holding a rank number from user or decoded input must use
// RankChecked.
func (t *Trace) Rank(r int) *RankData {
	rd, err := t.RankChecked(r)
	if err != nil {
		panic(err.Error())
	}
	return rd
}

// RankChecked returns the records of rank r, reporting an out-of-range rank
// as an error — the accessor for rank numbers originating outside the trace
// (CLI flags, decoded files).
func (t *Trace) RankChecked(r int) (*RankData, error) {
	if r < 0 || r >= len(t.Ranks) {
		return nil, fmt.Errorf("trace: rank %d out of range [0,%d)", r, len(t.Ranks))
	}
	return t.Ranks[r], nil
}

// AddEvent appends an event to its rank's stream.
func (t *Trace) AddEvent(e Event) {
	rd := t.Rank(int(e.Rank))
	rd.Events = append(rd.Events, e)
}

// AddSample appends a sample to its rank's stream.
func (t *Trace) AddSample(s Sample) {
	rd := t.Rank(int(s.Rank))
	rd.Samples = append(rd.Samples, s)
}

// NumEvents returns the total event count across ranks.
func (t *Trace) NumEvents() int {
	n := 0
	for _, rd := range t.Ranks {
		n += len(rd.Events)
	}
	return n
}

// NumSamples returns the total sample count across ranks.
func (t *Trace) NumSamples() int {
	n := 0
	for _, rd := range t.Ranks {
		n += len(rd.Samples)
	}
	return n
}

// EndTime returns the timestamp of the last record in the trace.
func (t *Trace) EndTime() sim.Time {
	var end sim.Time
	for _, rd := range t.Ranks {
		if n := len(rd.Events); n > 0 && rd.Events[n-1].Time > end {
			end = rd.Events[n-1].Time
		}
		if n := len(rd.Samples); n > 0 && rd.Samples[n-1].Time > end {
			end = rd.Samples[n-1].Time
		}
	}
	return end
}

// SortRecords re-establishes time order within every rank's streams. Trace
// producers in this repository emit in order already; SortRecords exists for
// traces assembled from merged or decoded sources.
func (t *Trace) SortRecords() {
	for _, rd := range t.Ranks {
		sort.SliceStable(rd.Events, func(i, j int) bool { return rd.Events[i].Time < rd.Events[j].Time })
		sort.SliceStable(rd.Samples, func(i, j int) bool { return rd.Samples[i].Time < rd.Samples[j].Time })
	}
}

// Validate checks the structural invariants decoded or hand-built traces
// must satisfy: records sorted by time, rank fields matching their stream,
// balanced region/comm nesting, stack references resolving, and cumulative
// counter values non-decreasing. The returned error wraps ErrInvalid.
func (t *Trace) Validate() error {
	for r := range t.Ranks {
		if err := t.ValidateRank(r); err != nil {
			return err
		}
	}
	return nil
}

// ValidateRank checks the invariants of a single rank's streams, so callers
// isolating faults per process (the degraded-mode analyzer) can keep the
// healthy ranks of a partially damaged trace. The returned error wraps
// ErrInvalid.
func (t *Trace) ValidateRank(r int) error {
	if r < 0 || r >= len(t.Ranks) {
		return fmt.Errorf("%w: rank %d out of range [0,%d)", ErrInvalid, r, len(t.Ranks))
	}
	rd := t.Ranks[r]
	if rd == nil {
		return fmt.Errorf("%w: rank %d missing", ErrInvalid, r)
	}
	if int(rd.Rank) != r {
		return fmt.Errorf("%w: rank slot %d holds rank %d", ErrInvalid, r, rd.Rank)
	}
	var prev sim.Time
	depthRegion, depthComm := 0, 0
	for i, e := range rd.Events {
		if e.Time < prev {
			return fmt.Errorf("%w: rank %d event %d out of order (%d after %d)", ErrInvalid, r, i, e.Time, prev)
		}
		prev = e.Time
		if int(e.Rank) != r {
			return fmt.Errorf("%w: rank %d event %d carries rank %d", ErrInvalid, r, i, e.Rank)
		}
		if !e.Type.Valid() {
			return fmt.Errorf("%w: rank %d event %d has invalid type %d", ErrInvalid, r, i, e.Type)
		}
		switch e.Type {
		case RegionEnter:
			depthRegion++
		case RegionExit:
			depthRegion--
			if depthRegion < 0 {
				return fmt.Errorf("%w: rank %d event %d: region exit without enter", ErrInvalid, r, i)
			}
		case CommEnter:
			depthComm++
		case CommExit:
			depthComm--
			if depthComm < 0 {
				return fmt.Errorf("%w: rank %d event %d: comm exit without enter", ErrInvalid, r, i)
			}
		}
	}
	if depthRegion != 0 {
		return fmt.Errorf("%w: rank %d has %d unclosed regions", ErrInvalid, r, depthRegion)
	}
	if depthComm != 0 {
		return fmt.Errorf("%w: rank %d has %d unclosed comms", ErrInvalid, r, depthComm)
	}
	prev = 0
	for i, s := range rd.Samples {
		if s.Time < prev {
			return fmt.Errorf("%w: rank %d sample %d out of order", ErrInvalid, r, i)
		}
		prev = s.Time
		if int(s.Rank) != r {
			return fmt.Errorf("%w: rank %d sample %d carries rank %d", ErrInvalid, r, i, s.Rank)
		}
		if s.Stack != callstack.NoStack {
			if _, ok := t.Stacks.Get(s.Stack); !ok {
				return fmt.Errorf("%w: rank %d sample %d references unknown stack %d", ErrInvalid, r, i, s.Stack)
			}
		}
	}
	return validateCounterMonotone(rd, r)
}

// validateCounterMonotone checks that every captured cumulative counter is
// non-decreasing along the rank's merged event+sample timeline — the PMU
// invariant that counter wrap, zeroed reads, and reordered payloads all
// break.
func validateCounterMonotone(rd *RankData, r int) error {
	var last [counters.NumIDs]int64
	var seen [counters.NumIDs]bool
	check := func(what string, i int, s *counters.Set) error {
		for c := range s {
			v := s[c]
			if v == counters.Missing {
				continue
			}
			if v < 0 {
				return fmt.Errorf("%w: rank %d %s %d: counter %d negative (%d)", ErrInvalid, r, what, i, c, v)
			}
			if seen[c] && v < last[c] {
				return fmt.Errorf("%w: rank %d %s %d: counter %d regresses (%d after %d)", ErrInvalid, r, what, i, c, v, last[c])
			}
			last[c] = v
			seen[c] = true
		}
		return nil
	}
	ei, si := 0, 0
	for ei < len(rd.Events) || si < len(rd.Samples) {
		haveE, haveS := ei < len(rd.Events), si < len(rd.Samples)
		if haveE && (!haveS || rd.Events[ei].Time <= rd.Samples[si].Time) {
			if err := check("event", ei, &rd.Events[ei].Counters); err != nil {
				return err
			}
			ei++
		} else {
			if err := check("sample", si, &rd.Samples[si].Counters); err != nil {
				return err
			}
			si++
		}
	}
	return nil
}

// Clone returns a deep copy of the trace's per-rank record streams. The
// symbol table and stack interner are shared with the original — they are
// append-only and record mutation never touches them — so a clone is cheap
// enough to perturb in fault-injection sweeps while the pristine original
// stays intact.
func (t *Trace) Clone() *Trace {
	out := &Trace{AppName: t.AppName, Symbols: t.Symbols, Stacks: t.Stacks}
	out.Ranks = make([]*RankData, len(t.Ranks))
	for i, rd := range t.Ranks {
		if rd == nil {
			continue
		}
		c := &RankData{Rank: rd.Rank}
		c.Events = append([]Event(nil), rd.Events...)
		c.Samples = append([]Sample(nil), rd.Samples...)
		out.Ranks[i] = c
	}
	return out
}

// Merge combines several single-application traces (e.g. produced by
// independent per-rank tracing backends) into one. All inputs must share the
// same symbol table and stack interner; rank numbers must not collide.
func Merge(app string, parts ...*Trace) (*Trace, error) {
	return MergeContext(context.Background(), app, parts...)
}

// MergeContext is Merge under a cancellable context, polled once per merged
// part so a deadline interrupts a fleet-sized merge between inputs.
func MergeContext(ctx context.Context, app string, parts ...*Trace) (*Trace, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("%w: nothing to merge", ErrMergeMismatch)
	}
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("%w: part %d is nil", ErrMergeMismatch, i)
		}
	}
	syms, stacks := parts[0].Symbols, parts[0].Stacks
	maxRank := -1
	for _, p := range parts {
		if p.Symbols != syms || p.Stacks != stacks {
			return nil, fmt.Errorf("%w: parts do not share symbol tables", ErrMergeMismatch)
		}
		for _, rd := range p.Ranks {
			if rd == nil || (len(rd.Events) == 0 && len(rd.Samples) == 0) {
				continue
			}
			if rd.Rank < 0 {
				return nil, fmt.Errorf("%w: negative rank %d", ErrMergeMismatch, rd.Rank)
			}
			if int(rd.Rank) > maxRank {
				maxRank = int(rd.Rank)
			}
		}
	}
	if maxRank < 0 {
		return nil, fmt.Errorf("%w: parts are all empty", ErrMergeMismatch)
	}
	out := New(app, maxRank+1, syms, stacks)
	seen := make([]bool, maxRank+1)
	for _, p := range parts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, rd := range p.Ranks {
			if rd == nil || (len(rd.Events) == 0 && len(rd.Samples) == 0) {
				continue
			}
			r := int(rd.Rank)
			if seen[r] {
				return nil, fmt.Errorf("%w: rank %d present twice", ErrMergeMismatch, r)
			}
			seen[r] = true
			out.Ranks[r].Events = append(out.Ranks[r].Events, rd.Events...)
			out.Ranks[r].Samples = append(out.Ranks[r].Samples, rd.Samples...)
		}
	}
	out.SortRecords()
	return out, nil
}
