package trace

import (
	"strings"
	"testing"

	"phasefold/internal/callstack"
	"phasefold/internal/counters"
	"phasefold/internal/sim"
)

func ctrAt(ins int64) counters.Set {
	s := counters.AllMissing()
	s[counters.Instructions] = ins
	s[counters.Cycles] = 2 * ins
	return s
}

// buildTestTrace assembles a small, well-formed 2-rank trace used across the
// package's tests: per rank, one iteration with one region burst and one
// communication.
func buildTestTrace(t *testing.T) *Trace {
	t.Helper()
	tr := New("unit", 2, nil, nil)
	rid := tr.Symbols.Define(callstack.Routine{Name: "k", File: "k.c", StartLine: 1, EndLine: 9})
	sid := tr.Stacks.Intern(callstack.Stack{{Routine: rid, Line: 5}})
	for rank := int32(0); rank < 2; rank++ {
		base := sim.Time(rank) * 10 // offset streams per rank
		add := func(at sim.Time, typ EventType, val int64, ins int64) {
			tr.AddEvent(Event{Time: base + at, Rank: rank, Type: typ, Value: val, Counters: ctrAt(ins)})
		}
		add(0, IterBegin, 0, 0)
		add(10, RegionEnter, 1, 100)
		add(110, RegionExit, 1, 1100)
		add(120, CommEnter, -1, 1150)
		add(170, CommExit, -1, 1200)
		add(180, IterEnd, 0, 1250)
		tr.AddSample(Sample{Time: base + 60, Rank: rank, Counters: ctrAt(600), Stack: sid})
	}
	return tr
}

func TestNewPanicsOnBadRankCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0 ranks) did not panic")
		}
	}()
	New("x", 0, nil, nil)
}

func TestCounts(t *testing.T) {
	tr := buildTestTrace(t)
	if tr.NumRanks() != 2 {
		t.Fatalf("NumRanks = %d", tr.NumRanks())
	}
	if tr.NumEvents() != 12 {
		t.Fatalf("NumEvents = %d, want 12", tr.NumEvents())
	}
	if tr.NumSamples() != 2 {
		t.Fatalf("NumSamples = %d, want 2", tr.NumSamples())
	}
	if tr.EndTime() != 190 {
		t.Fatalf("EndTime = %d, want 190", tr.EndTime())
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := buildTestTrace(t).Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestValidateCatchesDisorder(t *testing.T) {
	tr := buildTestTrace(t)
	tr.Ranks[0].Events[0], tr.Ranks[0].Events[1] = tr.Ranks[0].Events[1], tr.Ranks[0].Events[0]
	if err := tr.Validate(); err == nil || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("disorder not caught: %v", err)
	}
}

func TestValidateCatchesUnbalancedRegion(t *testing.T) {
	tr := New("x", 1, nil, nil)
	tr.AddEvent(Event{Time: 1, Type: RegionEnter, Value: 1, Counters: counters.AllMissing()})
	if err := tr.Validate(); err == nil || !strings.Contains(err.Error(), "unclosed") {
		t.Fatalf("unclosed region not caught: %v", err)
	}
}

func TestValidateCatchesExitWithoutEnter(t *testing.T) {
	tr := New("x", 1, nil, nil)
	tr.AddEvent(Event{Time: 1, Type: CommExit, Counters: counters.AllMissing()})
	if err := tr.Validate(); err == nil || !strings.Contains(err.Error(), "without enter") {
		t.Fatalf("comm exit without enter not caught: %v", err)
	}
}

func TestValidateCatchesWrongRankField(t *testing.T) {
	tr := New("x", 2, nil, nil)
	tr.Ranks[0].Events = append(tr.Ranks[0].Events, Event{Time: 1, Rank: 1, Type: IterBegin, Counters: counters.AllMissing()})
	if err := tr.Validate(); err == nil || !strings.Contains(err.Error(), "carries rank") {
		t.Fatalf("wrong rank field not caught: %v", err)
	}
}

func TestValidateCatchesDanglingStack(t *testing.T) {
	tr := New("x", 1, nil, nil)
	tr.AddSample(Sample{Time: 1, Stack: 42, Counters: counters.AllMissing()})
	if err := tr.Validate(); err == nil || !strings.Contains(err.Error(), "unknown stack") {
		t.Fatalf("dangling stack not caught: %v", err)
	}
}

func TestSortRecords(t *testing.T) {
	tr := New("x", 1, nil, nil)
	tr.AddEvent(Event{Time: 20, Type: IterEnd, Counters: counters.AllMissing()})
	tr.AddEvent(Event{Time: 10, Type: IterBegin, Counters: counters.AllMissing()})
	tr.SortRecords()
	if tr.Ranks[0].Events[0].Time != 10 {
		t.Fatal("SortRecords did not sort events")
	}
}

func TestMerge(t *testing.T) {
	syms := callstack.NewSymbolTable()
	stacks := callstack.NewInterner()
	mk := func(rank int32) *Trace {
		tr := New("part", 4, syms, stacks)
		tr.Ranks[rank].Events = append(tr.Ranks[rank].Events,
			Event{Time: 1, Rank: rank, Type: IterBegin, Counters: counters.AllMissing()},
			Event{Time: 2, Rank: rank, Type: IterEnd, Counters: counters.AllMissing()})
		return tr
	}
	merged, err := Merge("whole", mk(0), mk(2))
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumRanks() != 3 { // maxRank 2 -> 3 slots
		t.Fatalf("merged NumRanks = %d, want 3", merged.NumRanks())
	}
	if len(merged.Ranks[0].Events) != 2 || len(merged.Ranks[2].Events) != 2 {
		t.Fatal("merged events misplaced")
	}
	if err := merged.Validate(); err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
}

func TestMergeRejectsCollision(t *testing.T) {
	syms := callstack.NewSymbolTable()
	stacks := callstack.NewInterner()
	mk := func() *Trace {
		tr := New("p", 1, syms, stacks)
		tr.AddEvent(Event{Time: 1, Type: IterBegin, Counters: counters.AllMissing()})
		return tr
	}
	if _, err := Merge("w", mk(), mk()); err == nil {
		t.Fatal("rank collision not rejected")
	}
}

func TestMergeRejectsForeignTables(t *testing.T) {
	a := New("a", 1, nil, nil)
	a.AddEvent(Event{Time: 1, Type: IterBegin, Counters: counters.AllMissing()})
	b := New("b", 1, nil, nil)
	b.AddEvent(Event{Time: 1, Type: IterBegin, Counters: counters.AllMissing()})
	if _, err := Merge("w", a, b); err == nil {
		t.Fatal("merge across symbol tables not rejected")
	}
}

func TestMergeEmpty(t *testing.T) {
	if _, err := Merge("w"); err == nil {
		t.Fatal("empty merge not rejected")
	}
}

func TestEventTypeString(t *testing.T) {
	if RegionEnter.String() != "region_enter" || CommExit.String() != "comm_exit" {
		t.Fatal("event type names wrong")
	}
	if EventType(99).Valid() {
		t.Fatal("EventType(99) reported valid")
	}
	if EventType(99).String() == "" {
		t.Fatal("invalid event type String empty")
	}
}
