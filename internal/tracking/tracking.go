// Package tracking implements the cross-scenario analysis of Llort et al.,
// "On the usefulness of object tracking techniques in performance analysis"
// (SC 2013): the same application is executed under a sweep of scenarios
// (problem size, rank count, input set), each execution's burst clusters are
// detected independently, and clusters are then matched — "tracked" —
// across scenarios by proximity in the performance feature space, so the
// analyst sees how each code region's behaviour responds to the changing
// conditions rather than one isolated snapshot.
package tracking

import (
	"fmt"
	"math"
	"sort"

	"phasefold/internal/core"
	"phasefold/internal/sim"
)

// Snapshot is one scenario's analysis plus its label (e.g. "ranks=8" or
// "scale=2.0") and ordering key.
type Snapshot struct {
	// Label names the scenario in reports.
	Label string
	// X is the scenario's position on the sweep axis (e.g. the rank count
	// or the problem scale), used for trend fitting.
	X float64
	// Model is the scenario's analysis.
	Model *core.Model
}

// feature places a cluster in the tracking space. Matching uses behaviour
// metrics that are stable across scenario changes of *size* (IPC, work per
// instance in log space) — the same intuition as the structure-detection
// features.
func feature(ca *core.ClusterAnalysis) (ipc float64, logInstr float64, ok bool) {
	st := ca.Stat
	if st.MeanIPC <= 0 || st.MedianInstr <= 0 {
		return 0, 0, false
	}
	return st.MeanIPC, math.Log10(float64(st.MedianInstr)), true
}

// trackDist is the matching distance between two clusters. IPC differences
// count fully; work-volume differences are discounted because problem-size
// sweeps legitimately move the instruction count.
func trackDist(aIPC, aLog, bIPC, bLog float64) float64 {
	dIPC := aIPC - bIPC
	dLog := (aLog - bLog) * 0.35
	return math.Sqrt(dIPC*dIPC + dLog*dLog)
}

// Track is one tracked object: the "same" computation region followed
// through the scenarios.
type Track struct {
	// ID numbers the track.
	ID int
	// Region is the dominant instrumented region of the track's clusters.
	Region int64
	// Members maps snapshot index to the matched cluster (nil where the
	// track was not observed).
	Members []*core.ClusterAnalysis
}

// Observed returns how many scenarios the track appears in.
func (t *Track) Observed() int {
	n := 0
	for _, m := range t.Members {
		if m != nil {
			n++
		}
	}
	return n
}

// series extracts (x, y) pairs across the snapshots using get; snapshots
// where the track is absent are skipped.
func (t *Track) series(snaps []Snapshot, get func(*core.ClusterAnalysis) (float64, bool)) (xs, ys []float64) {
	for i, m := range t.Members {
		if m == nil {
			continue
		}
		if v, ok := get(m); ok {
			xs = append(xs, snaps[i].X)
			ys = append(ys, v)
		}
	}
	return xs, ys
}

// Trend is a least-squares linear trend of one metric along the sweep axis.
type Trend struct {
	// Slope is the metric change per unit of the sweep axis; Intercept the
	// extrapolated value at x=0.
	Slope, Intercept float64
	// RelSlope is the slope normalized by the metric's mean — "% change
	// per sweep unit" — the number the analyst reads.
	RelSlope float64
	// N is the number of scenarios backing the trend.
	N int
}

// fitTrend computes the least-squares line through (xs, ys).
func fitTrend(xs, ys []float64) (Trend, bool) {
	n := len(xs)
	if n < 2 {
		return Trend{}, false
	}
	mx, my := sim.Mean(xs), sim.Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		sxx += (xs[i] - mx) * (xs[i] - mx)
		sxy += (xs[i] - mx) * (ys[i] - my)
	}
	if sxx == 0 {
		return Trend{}, false
	}
	slope := sxy / sxx
	tr := Trend{Slope: slope, Intercept: my - slope*mx, N: n}
	if my != 0 {
		tr.RelSlope = slope / my
	}
	return tr, true
}

// DurationTrend fits the per-instance median duration (in seconds) along
// the sweep.
func (t *Track) DurationTrend(snaps []Snapshot) (Trend, bool) {
	xs, ys := t.series(snaps, func(ca *core.ClusterAnalysis) (float64, bool) {
		return ca.Stat.MedianDur.Seconds(), ca.Stat.MedianDur > 0
	})
	return fitTrend(xs, ys)
}

// IPCTrend fits the mean IPC along the sweep.
func (t *Track) IPCTrend(snaps []Snapshot) (Trend, bool) {
	xs, ys := t.series(snaps, func(ca *core.ClusterAnalysis) (float64, bool) {
		return ca.Stat.MeanIPC, ca.Stat.MeanIPC > 0
	})
	return fitTrend(xs, ys)
}

// CoverageTrend fits the cluster's share of total computation time.
func (t *Track) CoverageTrend(snaps []Snapshot) (Trend, bool) {
	xs := make([]float64, 0, len(snaps))
	ys := make([]float64, 0, len(snaps))
	for i, m := range t.Members {
		if m == nil || snaps[i].Model.TotalComputation <= 0 {
			continue
		}
		xs = append(xs, snaps[i].X)
		ys = append(ys, float64(m.Stat.TotalTime)/float64(snaps[i].Model.TotalComputation))
	}
	return fitTrend(xs, ys)
}

// MatchOptions tunes the tracker.
type MatchOptions struct {
	// MaxDist rejects matches farther than this in tracking space.
	MaxDist float64
}

// DefaultMatchOptions returns the matcher configuration used by the
// experiments.
func DefaultMatchOptions() MatchOptions { return MatchOptions{MaxDist: 0.35} }

// TrackClusters matches clusters across the snapshots. Tracks are seeded
// from the first snapshot's clusters (in coverage order) and extended
// greedily: in each subsequent snapshot, every track claims its nearest
// unclaimed cluster within MaxDist; clusters left unclaimed start new
// tracks. Tracks are returned sorted by first-snapshot coverage, new tracks
// after.
func TrackClusters(snaps []Snapshot, opt MatchOptions) ([]*Track, error) {
	if len(snaps) < 2 {
		return nil, fmt.Errorf("tracking: need at least 2 snapshots, got %d", len(snaps))
	}
	if opt.MaxDist <= 0 {
		return nil, fmt.Errorf("tracking: non-positive MaxDist %v", opt.MaxDist)
	}
	var tracks []*Track
	newTrack := func(si int, ca *core.ClusterAnalysis) {
		t := &Track{ID: len(tracks), Region: ca.Stat.Region, Members: make([]*core.ClusterAnalysis, len(snaps))}
		t.Members[si] = ca
		tracks = append(tracks, t)
	}
	for _, ca := range snaps[0].Model.Clusters {
		newTrack(0, ca)
	}
	for si := 1; si < len(snaps); si++ {
		clusters := snaps[si].Model.Clusters
		claimed := make([]bool, len(clusters))
		// Tracks claim in order (dominant first), each taking its nearest
		// compatible cluster.
		for _, t := range tracks {
			// Use the most recent observation as the track's position.
			var ref *core.ClusterAnalysis
			for k := si - 1; k >= 0; k-- {
				if t.Members[k] != nil {
					ref = t.Members[k]
					break
				}
			}
			if ref == nil {
				continue
			}
			rIPC, rLog, ok := feature(ref)
			if !ok {
				continue
			}
			best, bestD := -1, opt.MaxDist
			for ci, ca := range clusters {
				if claimed[ci] {
					continue
				}
				cIPC, cLog, ok := feature(ca)
				if !ok {
					continue
				}
				if d := trackDist(rIPC, rLog, cIPC, cLog); d <= bestD {
					best, bestD = ci, d
				}
			}
			if best >= 0 {
				claimed[best] = true
				t.Members[si] = clusters[best]
			}
		}
		for ci, ca := range clusters {
			if !claimed[ci] {
				newTrack(si, ca)
			}
		}
	}
	sort.SliceStable(tracks, func(a, b int) bool { return tracks[a].ID < tracks[b].ID })
	return tracks, nil
}
