package tracking

import (
	"context"

	"math"
	"testing"

	"phasefold/internal/core"
	"phasefold/internal/simapp"
)

// cgSweep analyzes the CG solver across a problem-size sweep: the SpMV
// region scales with RowsScale, the BLAS-1 regions do not.
func cgSweep(t *testing.T, scales []float64) []Snapshot {
	t.Helper()
	snaps := make([]Snapshot, 0, len(scales))
	for _, s := range scales {
		app := simapp.NewCGSolver()
		app.RowsScale = s
		cfg := simapp.Config{Ranks: 2, Iterations: 100, Seed: 7, FreqGHz: 2}
		model, _, err := core.AnalyzeApp(context.Background(), app, cfg, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, Snapshot{Label: "scale", X: s, Model: model})
	}
	return snaps
}

func TestTrackingFollowsRegionsAcrossScales(t *testing.T) {
	snaps := cgSweep(t, []float64{1, 1.5, 2, 3})
	tracks, err := TrackClusters(snaps, DefaultMatchOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Three regions -> three full tracks, no spurious extras.
	full := 0
	for _, tr := range tracks {
		if tr.Observed() == len(snaps) {
			full++
		}
	}
	if full != 3 {
		t.Fatalf("%d full tracks, want 3 (got %d tracks total)", full, len(tracks))
	}
	// The spmv track's duration must grow with the sweep; dot and axpy
	// must stay flat.
	for _, tr := range tracks {
		if tr.Observed() < len(snaps) {
			continue
		}
		dur, ok := tr.DurationTrend(snaps)
		if !ok {
			t.Fatalf("track %d (region %d): no duration trend", tr.ID, tr.Region)
		}
		switch tr.Region {
		case simapp.RegionCGSpMV:
			// Doubling the scale roughly doubles the duration: relative
			// slope per sweep unit should be near 1/mean-scale.
			if dur.RelSlope < 0.3 {
				t.Errorf("spmv duration trend too flat: %+v", dur)
			}
		case simapp.RegionCGDot, simapp.RegionCGAxpy:
			if math.Abs(dur.RelSlope) > 0.1 {
				t.Errorf("region %d duration should be flat, trend %+v", tr.Region, dur)
			}
		}
		// IPC is scale-invariant for every region.
		ipc, ok := tr.IPCTrend(snaps)
		if !ok || math.Abs(ipc.RelSlope) > 0.05 {
			t.Errorf("region %d IPC should be flat, trend %+v", tr.Region, ipc)
		}
	}
}

func TestCoverageTrendShiftsTowardSpMV(t *testing.T) {
	snaps := cgSweep(t, []float64{1, 2, 3})
	tracks, err := TrackClusters(snaps, DefaultMatchOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range tracks {
		if tr.Observed() < len(snaps) {
			continue
		}
		cov, ok := tr.CoverageTrend(snaps)
		if !ok {
			continue
		}
		if tr.Region == simapp.RegionCGSpMV && cov.Slope <= 0 {
			t.Errorf("spmv coverage should grow with problem size: %+v", cov)
		}
		if tr.Region == simapp.RegionCGDot && cov.Slope >= 0 {
			t.Errorf("dot coverage should shrink with problem size: %+v", cov)
		}
	}
}

func TestTrackingValidation(t *testing.T) {
	snaps := cgSweep(t, []float64{1, 2})
	if _, err := TrackClusters(snaps[:1], DefaultMatchOptions()); err == nil {
		t.Fatal("single snapshot accepted")
	}
	if _, err := TrackClusters(snaps, MatchOptions{}); err == nil {
		t.Fatal("zero MaxDist accepted")
	}
}

func TestNewBehaviourStartsNewTrack(t *testing.T) {
	// Scenario 2 runs a different app (stencil): its clusters must not be
	// absorbed into cg tracks when behaviour differs, and new tracks must
	// appear.
	cg := cgSweep(t, []float64{1})[0]
	st := simapp.NewStencil()
	cfg := simapp.Config{Ranks: 2, Iterations: 100, Seed: 7, FreqGHz: 2}
	model, _, err := core.AnalyzeApp(context.Background(), st, cfg, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	snaps := []Snapshot{cg, {Label: "stencil", X: 2, Model: model}}
	tracks, err := TrackClusters(snaps, MatchOptions{MaxDist: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	newTracks := 0
	for _, tr := range tracks {
		if tr.Members[0] == nil && tr.Members[1] != nil {
			newTracks++
		}
	}
	if newTracks == 0 {
		t.Fatal("no new tracks for the foreign behaviours")
	}
}

func TestFitTrend(t *testing.T) {
	tr, ok := fitTrend([]float64{1, 2, 3}, []float64{2, 4, 6})
	if !ok || math.Abs(tr.Slope-2) > 1e-12 || math.Abs(tr.Intercept) > 1e-12 {
		t.Fatalf("trend = %+v", tr)
	}
	if _, ok := fitTrend([]float64{1}, []float64{1}); ok {
		t.Fatal("single point produced a trend")
	}
	if _, ok := fitTrend([]float64{2, 2}, []float64{1, 5}); ok {
		t.Fatal("degenerate x produced a trend")
	}
}
