// Package phasefold identifies code phases in (simulated) parallel
// applications using piece-wise linear regressions over folded coarse-grain
// samples, reproducing Servat et al., "Identifying Code Phases Using
// Piece-Wise Linear Regressions" (IPDPS 2014).
//
// The pipeline combines three ingredients: minimal instrumentation (probes
// only at region/communication boundaries), coarse-grain sampling (counters
// + call stacks at millisecond periods), and folding (projecting all samples
// of a repeated region onto one synthetic instance). A piece-wise linear
// regression of the folded cumulative counters recovers the region's
// internal phases — boundaries and per-phase rates — at a granularity far
// below the sampling period, and folded call stacks attribute each phase to
// its source construct.
//
// Quick start:
//
//	app, _ := phasefold.NewApp("multiphase")
//	cfg := phasefold.DefaultConfig()
//	model, _, err := phasefold.AnalyzeApp(context.Background(), app, cfg)
//	// model.Clusters[0].Phases now lists the detected phases with their
//	// MIPS/IPC/miss-rate profile and source attribution.
//
// For data that arrives over time — a socket, a growing file, a live
// acquisition — Stream opens an incremental session over the same engine:
//
//	sess, _ := phasefold.Stream(ctx)
//	go func() { _ = sess.Consume(conn) }() // analyze while bytes arrive
//	snap := sess.Snapshot()                // provisional phases, any time
//	model, err := sess.Done()              // byte-identical to batch Analyze
//
// Every entry point is context-first and takes functional options
// (WithStrict, WithSalvage, WithBudget, WithParallelism, WithWindow,
// WithSnapshotEvery, WithTelemetry, WithLogger). The pre-redesign
// deprecated wrapper names (AnalyzeContext, DecodeTrace, ...) have been
// removed; their functionality lives in the canonical context-first names.
//
// The package is a facade over the internal packages; everything needed to
// acquire traces from the bundled simulated applications, analyze them, and
// render reports is re-exported here.
package phasefold

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync"

	"phasefold/internal/callstack"
	"phasefold/internal/core"
	"phasefold/internal/counters"
	"phasefold/internal/export"
	"phasefold/internal/faults"
	"phasefold/internal/obs"
	"phasefold/internal/query"
	"phasefold/internal/service"
	"phasefold/internal/sim"
	"phasefold/internal/simapp"
	"phasefold/internal/spectral"
	"phasefold/internal/stream"
	"phasefold/internal/trace"
)

// Re-exported pipeline types.
type (
	// Options configures the acquisition and analysis pipeline.
	Options = core.Options
	// Model is a complete trace analysis.
	Model = core.Model
	// ClusterAnalysis is the per-cluster analysis within a Model.
	ClusterAnalysis = core.ClusterAnalysis
	// Phase is one detected performance phase.
	Phase = core.Phase
	// RunResult bundles a simulated acquisition's outputs.
	RunResult = core.RunResult

	// App is a simulated SPMD application.
	App = simapp.App
	// Config parameterizes a simulated execution.
	Config = simapp.Config
	// Truth is the simulator's ground-truth phase structure.
	Truth = simapp.Truth

	// Trace is the performance-data container.
	Trace = trace.Trace
	// EventType discriminates instrumentation events in a Trace.
	EventType = trace.EventType

	// CounterID identifies a hardware counter.
	CounterID = counters.ID
	// Metric identifies a derived performance metric.
	Metric = counters.Metric

	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// Duration is a span of virtual time in nanoseconds.
	Duration = sim.Duration
)

// Virtual time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Derived per-phase metrics (index Phase.Metrics with these).
const (
	MIPS          = counters.MIPS
	IPC           = counters.IPC
	GHz           = counters.GHz
	L1MissRatio   = counters.L1MissRatio
	L2MissRatio   = counters.L2MissRatio
	L3MissRatio   = counters.L3MissRatio
	BranchMissPct = counters.BranchMissPct
	FPRatio       = counters.FPRatio
	MemRatio      = counters.MemRatio
	PowerW        = counters.PowerW
	NJPerInstr    = counters.NJPerInstr
)

// Instrumentation event types.
const (
	RegionEnter = trace.RegionEnter
	RegionExit  = trace.RegionExit
	CommEnter   = trace.CommEnter
	CommExit    = trace.CommExit
	IterBegin   = trace.IterBegin
	IterEnd     = trace.IterEnd
)

// Hardware counters (index Phase.Rates with these).
const (
	Instructions = counters.Instructions
	Cycles       = counters.Cycles
	L1DMisses    = counters.L1DMisses
	L2Misses     = counters.L2Misses
	L3Misses     = counters.L3Misses
	Loads        = counters.Loads
	Stores       = counters.Stores
	Branches     = counters.Branches
	BranchMisses = counters.BranchMisses
	FPOps        = counters.FPOps
	Energy       = counters.Energy
)

// MultiplexedOptions returns DefaultOptions with a realistic 4-register PMU
// rotation instead of the idealized native PMU: every counter group carries
// Instructions+Cycles plus two rotating events, and the analysis
// reconstructs the full metric set per phase from the rotated observations.
func MultiplexedOptions() Options {
	opt := core.DefaultOptions()
	opt.Schedule = counters.NewSchedule(counters.DefaultGroups())
	return opt
}

// DefaultOptions returns the standard pipeline configuration (1 ms coarse
// sampling, stack capture, DBSCAN structure detection, BIC-selected PWL).
func DefaultOptions() Options { return core.DefaultOptions() }

// DefaultConfig returns the standard simulated-execution configuration
// (4 ranks, 200 iterations, 2 GHz, seed 42).
func DefaultConfig() Config { return simapp.DefaultConfig() }

// NewApp instantiates a bundled simulated application by name; see AppNames.
func NewApp(name string) (App, error) { return simapp.NewApp(name) }

// AppNames lists the bundled simulated applications.
func AppNames() []string { return simapp.AppNames() }

// RunApp executes a simulated application, producing a trace and ground
// truth without analyzing it.
func RunApp(app App, cfg Config, opt Options) (*RunResult, error) {
	return core.RunApp(app, cfg, opt)
}

// Option tunes one call to a canonical entry point (Decode, DecodeText,
// Analyze, AnalyzeApp). Options compose left to right; the empty set means
// DefaultOptions, strict-format decoding, and no attached telemetry.
type Option func(*settings)

// settings is the resolved form of an Option list: the analysis Options,
// the decoder DecodeOptions, the streaming knobs, and any context
// attachments, kept in one place so every entry point interprets the same
// options the same way.
type settings struct {
	opt           Options
	decode        DecodeOptions
	window        int
	snapshotEvery int
	ctx           []func(context.Context) context.Context
}

func newSettings(opts []Option) *settings {
	s := &settings{opt: core.DefaultOptions()}
	for _, o := range opts {
		o(s)
	}
	return s
}

// context applies the accumulated attachments (telemetry, logger) to ctx.
func (s *settings) context(ctx context.Context) context.Context {
	for _, fn := range s.ctx {
		ctx = fn(ctx)
	}
	return ctx
}

// WithOptions replaces the whole analysis Options struct — the escape hatch
// for knobs without a dedicated functional option. Options listed after it
// still apply on top.
func WithOptions(opt Options) Option {
	return func(s *settings) { s.opt = opt }
}

// WithSalvage makes decoding recover what a damaged stream still holds and
// report the repairs in the SalvageReport instead of failing.
func WithSalvage() Option {
	return func(s *settings) { s.decode.Salvage = true }
}

// WithStrict makes the analysis fail fast instead of degrading: budget
// overruns wrap ErrBudget, recovered stage panics wrap ErrPanic, and
// damaged per-rank input is an error rather than a diagnostic.
func WithStrict() Option {
	return func(s *settings) { s.opt.Strict = true }
}

// WithBudget caps what the analysis may consume (records, ranks, resident
// bytes, per-stage wall-clock); see Budget.
func WithBudget(b Budget) Option {
	return func(s *settings) { s.opt.Budget = b }
}

// WithParallelism caps the worker count of every parallel stage: sectioned
// trace decode, burst extraction, per-cluster folding, and PWL fitting.
// Zero or negative means one worker per available CPU; 1 runs every stage
// inline on the calling goroutine. The result is identical at any setting.
func WithParallelism(n int) Option {
	return func(s *settings) {
		s.opt.Parallelism = n
		s.decode.Parallelism = n
	}
}

// WithWindow caps how many records a streaming Session may buffer — the
// samples that cannot attach to a computation burst yet. A Feed that would
// exceed the window fails with ErrWindow, bounding the session's memory on
// pathological streams. Zero (the default) uses the engine's default
// window. Batch entry points ignore it.
func WithWindow(records int) Option {
	return func(s *settings) { s.window = records }
}

// WithSnapshotEvery sets the streaming Session's snapshot recompute cadence
// in bursts: Session.Snapshot returns the cached view until at least this
// many new bursts completed. Zero (the default) uses the engine's default
// cadence. Batch entry points ignore it.
func WithSnapshotEvery(bursts int) Option {
	return func(s *settings) { s.snapshotEvery = bursts }
}

// WithTelemetry attaches a span recorder and a metrics registry to the
// call's context; either may be nil to enable only the other.
func WithTelemetry(rec *SpanRecorder, reg *MetricsRegistry) Option {
	return func(s *settings) {
		s.ctx = append(s.ctx, func(ctx context.Context) context.Context {
			return obs.WithTelemetry(ctx, rec, reg)
		})
	}
}

// WithLogger attaches a structured event logger (log/slog) to the call's
// context; the pipeline emits diagnostics, budget trims, salvage repairs,
// retries, and recovered panics as typed events on it.
func WithLogger(l *slog.Logger) Option {
	return func(s *settings) {
		s.ctx = append(s.ctx, func(ctx context.Context) context.Context {
			return obs.WithLogger(ctx, l)
		})
	}
}

// Analyze runs the analysis pipeline over an acquired trace. Cancelling ctx
// interrupts every stage promptly; the returned error then matches
// ErrCanceled (or the context's deadline error).
func Analyze(ctx context.Context, tr *Trace, opts ...Option) (*Model, error) {
	s := newSettings(opts)
	return core.Analyze(s.context(ctx), tr, s.opt)
}

// AnalyzeApp runs a simulated application and analyzes its trace in one
// call. The simulated acquisition itself is not interruptible; the analysis
// stages are.
func AnalyzeApp(ctx context.Context, app App, cfg Config, opts ...Option) (*Model, *RunResult, error) {
	s := newSettings(opts)
	return core.AnalyzeApp(s.context(ctx), app, cfg, s.opt)
}

// Spectral-analysis re-exports: markerless analysis of sampling-only
// traces (period detection and representative-window selection).
type (
	// Signal is a uniformly resampled performance-rate signal.
	Signal = spectral.Signal
	// Period is a detected iteration periodicity.
	Period = spectral.Period
	// Window is a representative stretch of the timeline.
	Window = spectral.Window
)

// BuildSignal derives the rate signal of a counter for one rank from its
// samples, resampled to the given step.
func BuildSignal(tr *Trace, rank int, id CounterID, step Duration) (*Signal, error) {
	return spectral.BuildSignal(tr, rank, id, step)
}

// DetectPeriod finds the dominant periodicity of a signal (minimum
// autocorrelation strength minStrength, e.g. 0.3).
func DetectPeriod(sig *Signal, minStrength float64) (Period, error) {
	return spectral.DetectPeriod(sig, minStrength)
}

// SelectRepresentative picks the most self-similar window of nPeriods
// consecutive periods.
func SelectRepresentative(sig *Signal, p Period, nPeriods int) (Window, error) {
	return spectral.SelectRepresentative(sig, p, nPeriods)
}

// PhaseRef names one phase within a Model, as returned by the
// programmable-analysis queries.
type PhaseRef = query.PhaseRef

// OptimizationHint applies the methodology's canonical triage recipe: the
// most expensive attributed phase wider than 10% of its region with IPC
// below 1 — the place a small code transformation pays off first. ok is
// false when no phase qualifies.
func OptimizationHint(m *Model) (PhaseRef, bool) {
	return query.OptimizationHint(m)
}

// Robustness re-exports: degraded-mode analysis diagnostics, salvage
// decoding, and deterministic fault injection for resilience experiments.
type (
	// Diagnostic is one observation the degraded-mode analyzer recorded
	// while working around damaged input; see Model.Diagnostics.
	Diagnostic = core.Diagnostic
	// Severity grades a Diagnostic.
	Severity = core.Severity
	// Quality grades a ClusterAnalysis (OK, Degraded, Rejected).
	Quality = core.Quality

	// DecodeOptions selects strict or salvage decoding.
	DecodeOptions = trace.DecodeOptions
	// SalvageReport describes what a salvage decode recovered.
	SalvageReport = trace.SalvageReport

	// FaultChain is a parsed, seeded sequence of trace perturbators.
	FaultChain = faults.Chain

	// Budget caps what an analysis may consume (records, ranks, resident
	// bytes, per-stage wall-clock); see Options.Budget. The zero value is
	// unlimited. In lenient mode an exceeded budget degrades the analysis
	// with budget_exceeded diagnostics; with Options.Strict it fails fast
	// wrapping ErrBudget.
	Budget = core.Budget
)

// Quality grades and diagnostic severities.
const (
	QualityOK       = core.QualityOK
	QualityDegraded = core.QualityDegraded
	QualityRejected = core.QualityRejected

	SeverityInfo  = core.SeverityInfo
	SeverityWarn  = core.SeverityWarn
	SeverityError = core.SeverityError
)

// Failure sentinels for errors.Is dispatch on Decode and Analyze errors.
// The four umbrella sentinels — ErrFormat, ErrBudget, ErrPanic, ErrCanceled
// — partition every pipeline failure; the remaining names refine ErrFormat.
var (
	// ErrFormat is the umbrella every malformed-input sentinel below
	// matches under errors.Is: dispatch on it when all decode failures are
	// handled alike, or on a specific sentinel to refine.
	ErrFormat = trace.ErrFormat

	ErrBadMagic  = trace.ErrBadMagic
	ErrTruncated = trace.ErrTruncated
	ErrCorrupt   = trace.ErrCorrupt
	ErrNoRanks   = trace.ErrNoRanks
	ErrInvalid   = trace.ErrInvalid

	// ErrMergeMismatch flags incompatible traces passed to a merge — a
	// usage error, deliberately outside the ErrFormat umbrella.
	ErrMergeMismatch = trace.ErrMergeMismatch

	// ErrBudget tags strict-mode analyses that exceeded their Budget;
	// ErrPanic tags strict-mode analyses that recovered an internal panic.
	ErrBudget = core.ErrBudget
	ErrPanic  = core.ErrPanic

	// ErrCanceled tags analyses and decodes interrupted by their context —
	// context.Canceled re-exported so callers can dispatch on every
	// pipeline failure class with one import. Deadline expiry still
	// surfaces as context.DeadlineExceeded.
	ErrCanceled = context.Canceled
)

// Decode reads a binary-format trace — the sectioned "PFT2" container
// (decoded rank-parallel under WithParallelism) or the legacy "PFT1"
// layout. Cancellation is polled throughout and never absorbed by salvage.
// The SalvageReport is non-nil only under WithSalvage, which recovers what
// a damaged stream still holds and reports the repairs instead of failing.
func Decode(ctx context.Context, r io.Reader, opts ...Option) (*Trace, *SalvageReport, error) {
	s := newSettings(opts)
	return trace.Decode(s.context(ctx), r, s.decode)
}

// DecodeText reads a text-format trace; options as for Decode. The
// line-oriented format decodes on a single goroutine regardless of
// WithParallelism.
func DecodeText(ctx context.Context, r io.Reader, opts ...Option) (*Trace, *SalvageReport, error) {
	s := newSettings(opts)
	return trace.DecodeText(s.context(ctx), r, s.decode)
}

// Streaming re-exports: the incremental analysis engine behind Stream.
type (
	// StreamSnapshot is a point-in-time view of the phases forming inside a
	// streaming session; see Session.Snapshot.
	StreamSnapshot = stream.Snapshot
	// StreamClusterState is one provisional cluster within a StreamSnapshot.
	StreamClusterState = stream.ClusterState
	// StreamPhasePreview is one provisional phase of a forming cluster.
	StreamPhasePreview = stream.PhasePreview
	// StreamHeader describes a stream before its records arrive; see
	// Session.Open.
	StreamHeader = stream.Header
	// Chunk is one batch of records for a single rank, fed via Session.Feed.
	Chunk = trace.Chunk
	// Event is one instrumentation event record.
	Event = trace.Event
	// Sample is one periodic counter sample record.
	Sample = trace.Sample
	// StackID references an interned call stack in a stream's header.
	StackID = callstack.StackID
)

// NoStack marks a sample that carries no call-stack reference.
const NoStack = callstack.NoStack

// Streaming failure sentinels.
var (
	// ErrWindow tags feeds that would exceed the session's bounded record
	// window (see WithWindow).
	ErrWindow = stream.ErrWindow
	// ErrSessionDone tags operations on a session whose Done already ran.
	ErrSessionDone = stream.ErrFinished
)

// Session is an incremental analysis in progress, produced by Stream. Feed
// it exactly one input — Consume for a binary container arriving over a
// reader, FeedTrace for a resident trace, or Open followed by Feed for
// caller-produced record chunks — then Snapshot at will and Done once.
// Methods are safe for concurrent use.
type Session struct {
	ctx      context.Context
	settings *settings
	mu       sync.Mutex
	inner    *stream.Session
	report   *SalvageReport
}

// Stream opens an incremental analysis session: the streaming counterpart
// of Analyze, accepting the same functional options plus the streaming
// knobs (WithWindow, WithSnapshotEvery). Records are analyzed as they
// arrive — bursts extract, clouds fold, and provisional clusters form
// online — holding only a bounded window of unattached records; Done runs
// the final clustering and regression and returns a model byte-identical
// to batch Analyze over the same records. Cancelling ctx interrupts the
// session promptly.
func Stream(ctx context.Context, opts ...Option) (*Session, error) {
	s := newSettings(opts)
	return &Session{ctx: s.context(ctx), settings: s}, nil
}

// bind creates the inner session once the stream's header is known.
func (s *Session) bind(hdr stream.Header) error {
	if s.inner != nil {
		return fmt.Errorf("phasefold: session already bound to an input")
	}
	inner, err := stream.New(s.ctx, hdr, stream.Options{
		Core:          s.settings.opt,
		Window:        s.settings.window,
		SnapshotEvery: s.settings.snapshotEvery,
	})
	if err != nil {
		return err
	}
	s.inner = inner
	return nil
}

// Open binds the session to a stream described by hdr, for callers that
// produce record chunks themselves (see Feed) rather than a container
// (Consume) or a resident trace (FeedTrace). A session accepts exactly one
// input; Open after any of the three fails.
func (s *Session) Open(hdr StreamHeader) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bind(hdr)
}

// Feed hands the session one batch of records for a single rank. The session
// must have been bound with Open first. Records are analyzed immediately;
// only samples that may still attach to an unfinished burst stay buffered,
// and exceeding the configured window fails the session with ErrWindow.
func (s *Session) Feed(c Chunk) error {
	s.mu.Lock()
	inner := s.inner
	s.mu.Unlock()
	if inner == nil {
		return fmt.Errorf("phasefold: session not bound; call Open before Feed (%w)", trace.ErrNoRanks)
	}
	return inner.Feed(c)
}

// Consume streams a binary-format container ("PFT2" or legacy "PFT1") from
// r, analyzing records chunk by chunk while bytes arrive — never holding
// the decoded trace in memory. Under WithSalvage a damaged stream yields
// what was recovered (see SalvageReport); otherwise the first damage fails
// the session. Consume returns when the stream ends or the session fails.
func (s *Session) Consume(r io.Reader) error {
	cr, err := trace.NewChunkReader(s.ctx, r, s.settings.decode)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if err := s.bind(stream.Header{
		App: cr.App(), NumRanks: cr.NumRanks(), Symbols: cr.Symbols(), Stacks: cr.Stacks(),
	}); err != nil {
		s.mu.Unlock()
		return err
	}
	inner := s.inner
	s.mu.Unlock()
	if err := inner.Consume(cr, streamChunkRecords); err != nil {
		return err
	}
	s.mu.Lock()
	s.report = inner.SalvageReport()
	s.mu.Unlock()
	return nil
}

// streamChunkRecords is the record granularity Consume hands the session:
// small enough to keep snapshots fresh, large enough to amortize decode
// state transitions.
const streamChunkRecords = 4096

// FeedTrace streams a resident trace through the session — the in-memory
// driver over the same engine, mostly useful to reuse streaming snapshots
// on already-decoded data. Done afterwards returns exactly what batch
// Analyze over tr returns.
func (s *Session) FeedTrace(tr *Trace) error {
	s.mu.Lock()
	if s.inner == nil {
		if err := s.bind(stream.Header{
			App: tr.AppName, NumRanks: tr.NumRanks(), Symbols: tr.Symbols, Stacks: tr.Stacks,
		}); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	inner := s.inner
	s.mu.Unlock()
	return inner.FeedTrace(tr)
}

// Snapshot returns a point-in-time view of the analysis forming inside the
// session: burst and buffer counts, and — once enough bursts completed to
// train the provisional clustering model — the live clusters with preview
// phase boundaries. Labels are provisional; Done's full re-clustering is
// authoritative. Returns nil before any input is bound.
func (s *Session) Snapshot() *StreamSnapshot {
	s.mu.Lock()
	inner := s.inner
	s.mu.Unlock()
	if inner == nil {
		return nil
	}
	return inner.Snapshot()
}

// Done ends the stream and runs the final clustering, folding, and
// regression over everything the session accumulated. The model is
// byte-identical to batch Analyze over the same records. The session
// cannot be fed afterwards; calling Done again returns ErrSessionDone.
func (s *Session) Done() (*Model, error) {
	s.mu.Lock()
	inner := s.inner
	s.mu.Unlock()
	if inner == nil {
		return nil, fmt.Errorf("phasefold: session was never fed (%w)", trace.ErrNoRanks)
	}
	return inner.Done()
}

// SalvageReport returns what a salvaging Consume recovered, nil otherwise
// (including before Consume finished).
func (s *Session) SalvageReport() *SalvageReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.report
}

// BufferedRecords returns the records the session currently buffers — the
// samples that may still attach to an unfinished burst.
func (s *Session) BufferedRecords() int {
	s.mu.Lock()
	inner := s.inner
	s.mu.Unlock()
	if inner == nil {
		return 0
	}
	return inner.BufferedRecords()
}

// PeakBufferedRecords returns the high-water mark of BufferedRecords — the
// bounded-memory figure WithWindow caps.
func (s *Session) PeakBufferedRecords() int {
	s.mu.Lock()
	inner := s.inner
	s.mu.Unlock()
	if inner == nil {
		return 0
	}
	return inner.PeakBufferedRecords()
}

// Observability re-exports: stage spans, the metrics registry, structured
// event logging, and per-run manifests. Attach any subset via the
// WithTelemetry/WithLogger options on Analyze or the decoders (or directly
// on a context with ContextWithTelemetry/ContextWithLogger) and the
// pipeline records itself; with nothing attached every instrumentation
// point is a no-op.
type (
	// MetricsRegistry holds a run's counters, gauges, and histograms; export
	// with WritePrometheus (text exposition format) or MarshalJSON.
	MetricsRegistry = obs.Registry
	// SpanRecorder collects the run's stage span trees.
	SpanRecorder = obs.Recorder
	// Span is one timed, attributed, possibly nested unit of pipeline work.
	Span = obs.Span
	// RunReport is the per-run manifest: options fingerprint, input sizes,
	// stage durations, outcome, and diagnostics, serializable to JSON.
	RunReport = obs.RunReport
	// StageReport is the serialized form of one recorded span.
	StageReport = obs.StageReport
	// InputInfo describes one analyzed input in a RunReport.
	InputInfo = obs.InputInfo
	// Diag is the structured (kind, stage, detail) core of a Diagnostic —
	// the shape to match on instead of parsing message strings.
	Diag = core.Diag
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewSpanRecorder returns an empty stage-span recorder.
func NewSpanRecorder() *SpanRecorder { return obs.NewRecorder() }

// ContextWithTelemetry attaches a span recorder and a metrics registry to
// ctx directly — for contexts that outlive one call; the WithTelemetry
// option is usually more convenient. Either may be nil to enable only the
// other.
func ContextWithTelemetry(ctx context.Context, rec *SpanRecorder, reg *MetricsRegistry) context.Context {
	return obs.WithTelemetry(ctx, rec, reg)
}

// ContextWithLogger attaches a structured event logger (log/slog) to ctx
// directly; see the WithLogger option.
func ContextWithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return obs.WithLogger(ctx, l)
}

// StartSpan opens a span nested under the context's current span (or as a
// new root when none). It returns ctx unchanged and a nil (inert) span when
// the context carries no SpanRecorder; the caller must End the span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return obs.StartSpan(ctx, name)
}

// SpanFromContext returns the current span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span { return obs.SpanFromContext(ctx) }

// MetricsFromContext returns the metrics registry carried by ctx, or nil —
// whose instruments are all inert.
func MetricsFromContext(ctx context.Context) *MetricsRegistry { return obs.Metrics(ctx) }

// Fingerprint returns a short stable hash of v's rendered value — the
// options fingerprint recorded in run manifests.
func Fingerprint(v any) string { return obs.Fingerprint(v) }

// Export re-exports: rendering a finished Model into interchange formats
// (Perfetto timelines, folded flamegraph stacks, OpenMetrics snapshots)
// and the interactive HTML report server. Everything here is strictly
// post-analysis: a pipeline that never exports pays nothing for it.
type (
	// ExportView is the stable, self-contained export representation of a
	// Model — every label, frame, and metric resolved to plain values.
	ExportView = core.ExportView
	// ReportServer serves the interactive HTML report (timeline, sortable
	// tables, artifact downloads, SSE batch progress).
	ReportServer = export.Server
)

// ExportModel builds the stable export view of a finished model; tr (the
// analyzed trace) supplies rank extents and symbol names and may be nil.
func ExportModel(m *Model, tr *Trace) *ExportView { return m.Export(tr) }

// WritePerfetto writes the view as Chrome trace-event JSON, loadable in
// ui.perfetto.dev: one track per rank (bursts and phase subdivisions),
// one per cluster (representative burst), diagnostics as instants.
func WritePerfetto(w io.Writer, v *ExportView) error { return export.WritePerfetto(w, v) }

// WriteFlamegraph writes the view's per-phase attribution as folded stacks
// (flamegraph.pl / speedscope input). weight is "" for phase time or a
// captured counter name; see FlamegraphWeights.
func WriteFlamegraph(w io.Writer, v *ExportView, weight string) error {
	return export.WriteFlamegraph(w, v, weight)
}

// FlamegraphWeights lists the weightings available for a view: phase time
// ("") plus each captured counter.
func FlamegraphWeights(v *ExportView) []string { return export.FlamegraphWeights(v) }

// SnapshotMetrics renders the view's per-phase results as a metrics
// registry (gauges under phasefold_); export with WritePrometheus or
// WriteJSON.
func SnapshotMetrics(v *ExportView) *MetricsRegistry { return export.Snapshot(v) }

// NewReportServer returns an HTML report server; call SetView, then
// ListenAndServe.
func NewReportServer() *ReportServer { return export.NewServer() }

// ParseFaults parses a fault-injection spec like "drop=0.2,skew=50us" into a
// deterministic seeded chain; see KnownFaults for the registry.
func ParseFaults(spec string, seed uint64) (*FaultChain, error) {
	return faults.Parse(spec, seed)
}

// KnownFaults lists the registered fault classes.
func KnownFaults() []string { return faults.Known() }

// EncodeTrace writes a trace in the binary container format (sectioned
// "PFT2", encoded rank-parallel).
func EncodeTrace(w io.Writer, tr *Trace) error { return trace.Encode(w, tr) }

// EncodeTraceText writes a trace in the human-readable text format.
func EncodeTraceText(w io.Writer, tr *Trace) error { return trace.EncodeText(w, tr) }

// Service re-exports: the multi-tenant analysis daemon behind
// cmd/phasefoldd — HTTP trace uploads through admission control, a bounded
// queue, the supervised pipeline, and a content-addressed result cache.
type (
	// AnalysisService is a running daemon instance: mount Handler (or call
	// ListenAndServe) and stop with Drain.
	AnalysisService = service.Service
	// ServiceConfig sizes a daemon; start from DefaultServiceConfig.
	ServiceConfig = service.Config
	// ServiceStats is the daemon's live counter snapshot (/v1/stats).
	ServiceStats = service.Stats
)

// DefaultServiceConfig returns the production-shaped daemon configuration:
// salvage decoding, bounded queue/cache/admission, supervised jobs.
func DefaultServiceConfig() ServiceConfig { return service.Defaults() }

// NewAnalysisService builds a daemon from cfg; the worker pool starts
// immediately, serving starts when its Handler is mounted (or via
// ListenAndServe).
func NewAnalysisService(cfg ServiceConfig) (*AnalysisService, error) { return service.New(cfg) }
