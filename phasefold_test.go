package phasefold_test

import (
	"context"

	"bytes"
	"strings"
	"testing"

	"phasefold"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	app, err := phasefold.NewApp("multiphase")
	if err != nil {
		t.Fatal(err)
	}
	model, run, err := phasefold.AnalyzeApp(context.Background(), app, phasefold.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if model.NumClusters < 1 || len(model.Clusters) < 1 {
		t.Fatal("no clusters detected")
	}
	hot := model.Clusters[0]
	if len(hot.Phases) != 4 {
		t.Fatalf("quickstart flow found %d phases, want 4", len(hot.Phases))
	}
	for _, ph := range hot.Phases {
		if !ph.MetricsOK[phasefold.MIPS] || !ph.MetricsOK[phasefold.IPC] {
			t.Fatal("phase missing headline metrics")
		}
		if ph.Source == "" {
			t.Fatal("phase missing source attribution")
		}
	}
	var buf bytes.Buffer
	if err := model.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "multiphase.step") {
		t.Fatal("report does not mention the kernel routine")
	}
	if run.Trace.NumSamples() == 0 {
		t.Fatal("no samples acquired")
	}
}

func TestPublicAPITraceRoundtrip(t *testing.T) {
	app, err := phasefold.NewApp("cg")
	if err != nil {
		t.Fatal(err)
	}
	cfg := phasefold.DefaultConfig()
	cfg.Iterations = 60
	run, err := phasefold.RunApp(app, cfg, phasefold.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var bin, txt bytes.Buffer
	if err := phasefold.EncodeTrace(&bin, run.Trace); err != nil {
		t.Fatal(err)
	}
	if err := phasefold.EncodeTraceText(&txt, run.Trace); err != nil {
		t.Fatal(err)
	}
	fromBin, _, err := phasefold.Decode(context.Background(), &bin)
	if err != nil {
		t.Fatal(err)
	}
	fromTxt, _, err := phasefold.DecodeText(context.Background(), &txt)
	if err != nil {
		t.Fatal(err)
	}
	// Both decoded traces must analyze identically to the original.
	want, err := phasefold.Analyze(context.Background(), run.Trace)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range []*phasefold.Trace{fromBin, fromTxt} {
		got, err := phasefold.Analyze(context.Background(), tr)
		if err != nil {
			t.Fatalf("decoded trace %d: %v", i, err)
		}
		if got.NumBursts != want.NumBursts || got.NumClusters != want.NumClusters {
			t.Fatalf("decoded trace %d analyzes differently: %d/%d vs %d/%d",
				i, got.NumBursts, got.NumClusters, want.NumBursts, want.NumClusters)
		}
	}
}

func TestPublicAPIMultiplexedOptions(t *testing.T) {
	app, err := phasefold.NewApp("multiphase")
	if err != nil {
		t.Fatal(err)
	}
	cfg := phasefold.DefaultConfig()
	cfg.Iterations = 400
	model, _, err := phasefold.AnalyzeApp(context.Background(), app, cfg, phasefold.WithOptions(phasefold.MultiplexedOptions()))
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Clusters) == 0 || len(model.Clusters[0].Phases) != 4 {
		t.Fatal("multiplexed analysis lost the phase structure")
	}
}

func TestPublicAPIOptimizationHint(t *testing.T) {
	app, err := phasefold.NewApp("cg")
	if err != nil {
		t.Fatal(err)
	}
	cfg := phasefold.DefaultConfig()
	cfg.Iterations = 120
	model, _, err := phasefold.AnalyzeApp(context.Background(), app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hint, ok := phasefold.OptimizationHint(model)
	if !ok {
		t.Fatal("no optimization hint")
	}
	if !strings.Contains(hint.Phase.Source, "cg.spmv") {
		t.Fatalf("hint points at %q", hint.Phase.Source)
	}
}

func TestPublicAPIAppRegistry(t *testing.T) {
	names := phasefold.AppNames()
	if len(names) < 5 {
		t.Fatalf("only %d bundled apps", len(names))
	}
	for _, n := range names {
		if _, err := phasefold.NewApp(n); err != nil {
			t.Fatalf("NewApp(%q): %v", n, err)
		}
	}
	if _, err := phasefold.NewApp("nope"); err == nil {
		t.Fatal("unknown app accepted")
	}
}
