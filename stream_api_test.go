package phasefold_test

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"phasefold"
	"phasefold/internal/faults"
)

// encodedTrace simulates a workload, optionally damages the trace and the
// encoded stream with the fault spec, and returns the final byte stream.
func encodedTrace(t *testing.T, name string, iters int, spec string, seed uint64) []byte {
	t.Helper()
	app, err := phasefold.NewApp(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := phasefold.DefaultConfig()
	cfg.Iterations = iters
	run, err := phasefold.RunApp(app, cfg, phasefold.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	chain, err := faults.Parse(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	chain.ApplyTrace(run.Trace)
	var buf bytes.Buffer
	if err := phasefold.EncodeTrace(&buf, run.Trace); err != nil {
		t.Fatal(err)
	}
	return chain.ApplyStream(buf.Bytes())
}

// TestStreamEquivalenceTable drives the same byte stream through the batch
// path (Decode then Analyze) and the streaming path (Stream + Consume) across
// the whole fault corpus and requires byte-identical models. Both references
// consume the same encoded bytes: the container codec canonicalizes the stack
// table, so the contract is between two consumers of one stream.
func TestStreamEquivalenceTable(t *testing.T) {
	cases := []struct {
		name    string
		spec    string
		salvage bool
	}{
		{"pristine", "", false},
		{"drop", "drop=0.2", false},
		{"killrank", "killrank=0.3", false},
		{"truncate", "truncate=0.5", false},
		{"skew", "skew=50us", false},
		{"wrap", "wrap=40", false},
		{"dup", "dup=0.05", false},
		{"reorder", "reorder=0.02", false},
		{"zero", "zero=0.02", false},
		{"garble", "garble=0.02", false},
		{"salvage-chop", "chop=0.6", true},
		{"salvage-corrupt", "corrupt=0.0002", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw := encodedTrace(t, "multiphase", 150, tc.spec, 7)
			var opts []phasefold.Option
			if tc.salvage {
				opts = append(opts, phasefold.WithSalvage())
			}

			tr, rep, decErr := phasefold.Decode(context.Background(), bytes.NewReader(raw), opts...)
			var batch *phasefold.Model
			if decErr == nil {
				batch, decErr = phasefold.Analyze(context.Background(), tr)
			}

			sess, err := phasefold.Stream(context.Background(), opts...)
			if err != nil {
				t.Fatal(err)
			}
			streamErr := sess.Consume(bytes.NewReader(raw))
			var streamed *phasefold.Model
			if streamErr == nil {
				streamed, streamErr = sess.Done()
			}

			// The byte-identity guarantee is prefix-complete: it holds whenever
			// the records that reach the analyzer needed no in-place repair.
			// A salvage that rewrote records (Sanitize problems in the report)
			// is outside it — whole-rank repairs such as re-sorting cannot be
			// replayed inside a bounded record window, which is why phasefoldd
			// gates its streamed fast path on a pristine decode. Such runs must
			// still terminate deterministically with a model or a clean error.
			if rep != nil && len(rep.Problems) > 0 {
				if streamErr == nil && streamed == nil {
					t.Fatal("repairing salvage returned neither model nor error")
				}
				return
			}
			if (decErr == nil) != (streamErr == nil) {
				t.Fatalf("paths disagree: batch err %v, stream err %v", decErr, streamErr)
			}
			if decErr != nil {
				return
			}
			if !reflect.DeepEqual(batch, streamed) {
				t.Fatalf("streamed model diverges from batch:\nbatch:    %+v\nstreamed: %+v", batch, streamed)
			}
		})
	}
}

// TestStreamConsumeCancelsPromptly mirrors the decoder's cancellation
// contract at the session level: a canceled context must surface within
// 100ms, never as a partially analyzed model.
func TestStreamConsumeCancelsPromptly(t *testing.T) {
	raw := encodedTrace(t, "multiphase", 3000, "", 0)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sess, err := phasefold.Stream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := sess.Consume(bytes.NewReader(raw)); !errors.Is(err, phasefold.ErrCanceled) {
		t.Fatalf("canceled consume returned %v, want ErrCanceled", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("cancellation took %v, want under 100ms", d)
	}

	// Mid-flight: cancel while the session is draining chunks.
	ctx, cancel = context.WithCancel(context.Background())
	sess, err = phasefold.Stream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- sess.Consume(bytes.NewReader(raw)) }()
	cancel()
	start = time.Now()
	select {
	case err := <-done:
		// The consume may have raced to completion before the cancel landed;
		// it must never return some third, undefined state.
		if err != nil && !errors.Is(err, phasefold.ErrCanceled) {
			t.Fatalf("mid-flight cancel returned %v, want ErrCanceled or nil", err)
		}
		if d := time.Since(start); d > 100*time.Millisecond {
			t.Errorf("mid-flight cancellation took %v after cancel, want under 100ms", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("consume ignored cancellation")
	}
}

// TestStreamBoundedMemory checks the record window: a session never buffers
// the whole trace, peak buffering stays flat as the trace grows, and an
// undersized window fails with ErrWindow instead of buffering past it.
func TestStreamBoundedMemory(t *testing.T) {
	peakFor := func(iters int) (int, int) {
		raw := encodedTrace(t, "multiphase", iters, "", 0)
		sess, err := phasefold.Stream(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.Consume(bytes.NewReader(raw)); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Done(); err != nil {
			t.Fatal(err)
		}
		return sess.PeakBufferedRecords(), len(raw)
	}
	peak1, bytes1 := peakFor(200)
	peak4, bytes4 := peakFor(800)
	if bytes4 < 3*bytes1 {
		t.Fatalf("4x trace is not 4x the bytes: %d vs %d", bytes4, bytes1)
	}
	if peak1 == 0 || peak4 == 0 {
		t.Fatal("session reports zero peak buffering")
	}
	if peak4 > 2*peak1 {
		t.Fatalf("peak buffering grows with trace length: %d at 1x, %d at 4x", peak1, peak4)
	}

	// An undersized window fails the session instead of buffering past it:
	// samples with no burst to attach to (their events have not arrived yet)
	// are exactly the records a session must hold.
	sess, err := phasefold.Stream(context.Background(), phasefold.WithWindow(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Open(phasefold.StreamHeader{App: "x", NumRanks: 1}); err != nil {
		t.Fatal(err)
	}
	var smps []phasefold.Sample
	for i := 0; i < 8; i++ {
		smps = append(smps, phasefold.Sample{Time: phasefold.Time(1000 + 10*i), Stack: phasefold.NoStack})
	}
	if err := sess.Feed(phasefold.Chunk{Rank: 0, Samples: smps}); !errors.Is(err, phasefold.ErrWindow) {
		t.Fatalf("undersized window returned %v, want ErrWindow", err)
	}
}
