package phasefold_test

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"phasefold"
)

// BenchmarkStreamConsume measures the streaming engine end to end: one
// encoded trace consumed through phasefold.Stream at growing sizes. Besides
// ns/op it reports records/s (decode + incremental analysis throughput) and
// peak_records — the session's high-water record buffer, which must stay
// flat as the trace grows: the streamed path holds only the samples of the
// still-open burst per rank, never the trace. CI folds these figures into
// BENCH_perf.json and fails when peak_records grows super-linearly.
//
//	go test -run '^$' -bench BenchmarkStreamConsume -benchtime 1x .
func BenchmarkStreamConsume(b *testing.B) {
	for _, sz := range []struct {
		name  string
		iters int
	}{
		{"size=1x", 40},
		{"size=4x", 160},
		{"size=16x", 640},
	} {
		b.Run(sz.name, func(b *testing.B) { benchStreamConsume(b, sz.iters) })
	}
}

// streamBenchInput caches the encoded traces across benchmark runs (the
// simulated acquisition dominates setup time).
var streamBenchInputs sync.Map // iters → streamInput

type streamInput struct {
	data    []byte
	records int
}

func benchStreamConsume(b *testing.B, iters int) {
	in := streamBenchInput(b, iters)
	ctx := context.Background()
	b.SetBytes(int64(len(in.data)))
	var peak int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := phasefold.Stream(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if err := sess.Consume(bytes.NewReader(in.data)); err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Done(); err != nil {
			b.Fatal(err)
		}
		peak = sess.PeakBufferedRecords()
	}
	b.StopTimer()
	if peak <= 0 {
		b.Fatal("session reports zero peak buffering")
	}
	b.ReportMetric(float64(peak), "peak_records")
	b.ReportMetric(float64(in.records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

func streamBenchInput(b *testing.B, iters int) streamInput {
	b.Helper()
	if v, ok := streamBenchInputs.Load(iters); ok {
		return v.(streamInput)
	}
	app, err := phasefold.NewApp("multiphase")
	if err != nil {
		b.Fatal(err)
	}
	cfg := phasefold.DefaultConfig()
	cfg.Ranks, cfg.Iterations = 4, iters
	run, err := phasefold.RunApp(app, cfg, phasefold.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	records := 0
	for _, rd := range run.Trace.Ranks {
		records += len(rd.Events) + len(rd.Samples)
	}
	var buf bytes.Buffer
	if err := phasefold.EncodeTrace(&buf, run.Trace); err != nil {
		b.Fatal(err)
	}
	in := streamInput{data: buf.Bytes(), records: records}
	streamBenchInputs.Store(iters, in)
	return in
}
